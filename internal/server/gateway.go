package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcdc/internal/hashring"
)

// Gateway is mcdcd's horizontal-scaling front end: a consistent-hash router
// over a fleet of backend daemons that all serve the same model snapshots.
// Placement is deterministic — a session id (and, for stateless traffic, a
// model+row digest) always lands on the same backend — so stateful streaming
// sessions live on exactly one backend and the fleet's answers are
// byte-identical to a single backend serving the same snapshots:
//
//	POST /assign        routed by session id, or by model+row key
//	POST /assign/batch  scattered across backends by row key, gathered in order
//	POST /sessions      routed by session id (the session lives there)
//	DELETE /sessions/{id}  routed likewise
//	POST /models, DELETE /models/{name}, POST /checkpoint  broadcast to all
//	GET  /models        proxied to the first healthy backend (fleet-identical)
//	GET  /healthz       aggregated: ok only when every backend is up
//	GET  /metrics       backend counters summed per series + gateway-local ones
//	GET  /ring          placement debug: members, health, ?key= lookup
//
// Routes are served under /v1 with the pre-versioning paths as aliases,
// matching the backends. The assignment routes also speak the binary frame
// protocol (gateway_wire.go): frames are routed per row exactly like JSON
// traffic, and the merged response is byte-identical to a solo backend's.
// A backend 429 (admission shed) relays to the caller unchanged — including
// Retry-After — and increments a per-backend shed counter in /metrics.
//
// The gateway holds no model or session state itself: backends can restart
// (resuming their sessions from -state-dir) without the gateway noticing
// beyond failed requests during the gap.
type Gateway struct {
	cfg GatewayConfig
	// client proxies traffic; probe is a short-timeout client for health
	// checks — a hung backend must cost /healthz a bounded wait, not the
	// full proxy timeout.
	client *http.Client
	probe  *http.Client
	mux    *http.ServeMux
	httpm  *httpMetrics
	obs    *obs // request ids + structured request logging
	log    *slog.Logger
	start  time.Time

	// placeMu guards placement: ring membership, the backend list, and the
	// session overrides recorded by failover/migration. Request routing takes
	// it shared; ring join/leave takes it exclusively, which is what makes a
	// membership cutover atomic — no request can place against a half-updated
	// ring. stateMu guards the per-backend atomics maps and is never held
	// across a network call, so membership changes (which do call out while
	// holding placeMu) can still read counters. Lock order: placeMu → stateMu.
	placeMu   sync.RWMutex
	backends  []string // normalized, deduped, sorted
	ring      *hashring.Ring
	overrides map[string]string // session id → backend, when off ring placement

	stateMu sync.RWMutex
	up      map[string]*atomic.Bool  // health verdict per backend
	sheds   map[string]*atomic.Int64 // 429s observed per backend (admission sheds)
	retries map[string]*atomic.Int64 // transient-failure retries per backend

	failovers atomic.Int64 // sessions promoted onto a replica after owner loss
	hedges    atomic.Int64 // hedge requests launched against a slow backend

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Backends are the daemon addresses (host:port) the ring is built over.
	Backends []string
	// Replicas is the virtual-node count per backend (≤ 0 → 128).
	Replicas int
	// HealthEvery is the per-backend health-check cadence (0 disables the
	// checker; backends then stay marked up). Health feeds /healthz and
	// /metrics only — routing stays deterministic, because re-routing a
	// session away from its backend would abandon its state.
	HealthEvery time.Duration
	// Timeout bounds each proxied backend request (0 → 30s).
	Timeout time.Duration
	// Retries is how many times a transiently failed backend request
	// (connection refused/reset, timeout, severed connection) is retried
	// against the same backend before the gateway gives up on it and fails
	// over (< 0 disables; 0 → default 2). Application-level errors are never
	// retried — they are relayed verbatim.
	Retries int
	// RetryBackoff is the initial delay between retries; it doubles per
	// attempt and caps at 1s (0 → 25ms).
	RetryBackoff time.Duration
	// HedgeAfter, when > 0, launches a hedge request against the next
	// backend in the key's ring chain if a stateless single assignment has
	// not answered within this duration; the first response wins. Only
	// stateless traffic hedges — a session assignment is not idempotent
	// until its owner has been failed over.
	HedgeAfter time.Duration
	// FleetSecret authenticates the gateway to the backends' intra-fleet
	// endpoints (promotion, migration, membership pushes) and must match the
	// backends' -fleet-secret.
	FleetSecret string
	// Transport overrides the HTTP transport used for backend traffic —
	// the fault-injection hook (internal/testenv.FaultRoundTripper). nil
	// uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives structured operational and request logs (nil = silent).
	Logger *slog.Logger
	// LogSlow logs any request slower than this at Warn level, with its
	// request id, endpoint, status, and duration (0 disables).
	LogSlow time.Duration
}

// NewGateway builds a gateway over the configured backends and starts its
// health checker (when configured). Call Close to stop it.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	seen := make(map[string]bool)
	var backends []string
	for _, b := range cfg.Backends {
		b = strings.TrimSpace(b)
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		backends = append(backends, b)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("server: gateway needs at least one backend address")
	}
	sort.Strings(backends)
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	probeTimeout := 2 * time.Second
	if timeout < probeTimeout {
		probeTimeout = timeout
	}
	g := &Gateway{
		cfg:       cfg,
		backends:  backends,
		ring:      hashring.New(cfg.Replicas),
		client:    &http.Client{Timeout: timeout, Transport: cfg.Transport},
		probe:     &http.Client{Timeout: probeTimeout, Transport: cfg.Transport},
		mux:       http.NewServeMux(),
		httpm:     newHTTPMetrics(),
		obs:       newObs(cfg.Logger, cfg.LogSlow),
		start:     time.Now(),
		overrides: make(map[string]string),
		up:        make(map[string]*atomic.Bool, len(backends)),
		sheds:     make(map[string]*atomic.Int64, len(backends)),
		retries:   make(map[string]*atomic.Int64, len(backends)),
		stop:      make(chan struct{}),
	}
	g.log = g.obs.log
	g.ring.Add(backends...)
	for _, b := range backends {
		g.initBackendState(b)
	}
	g.routes()
	if cfg.HealthEvery > 0 {
		g.wg.Add(1)
		go g.healthLoop()
	}
	return g, nil
}

// Close stops the health checker and waits for it.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Backends returns the (sorted) backend membership.
func (g *Gateway) Backends() []string { return g.backendList() }

func (g *Gateway) routes() {
	// Mirrors Server.handle: the canonical /v1 route plus the pre-versioning
	// alias, both behind one counter labeled by the canonical pattern.
	handle := func(pattern string, fn http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		canonical := method + " /v1" + path
		h := g.httpm.instrument(canonical, g.obs, fn)
		g.mux.HandleFunc(canonical, h)
		g.mux.HandleFunc(pattern, h)
	}
	handle("GET /healthz", g.handleHealthz)
	handle("GET /metrics", g.handleMetrics)
	handle("GET /ring", g.handleRing)
	handle("POST /ring/join", g.handleRingJoin)
	handle("POST /ring/leave", g.handleRingLeave)
	handle("GET /models", g.handleListModels)
	handle("POST /models", g.handleBroadcastModels)
	handle("DELETE /models/{name}", g.handleDeleteModel)
	handle("POST /assign", g.dispatchAssign)
	handle("POST /assign/batch", g.dispatchAssignBatch)
	handle("POST /sessions", g.handleCreateSession)
	handle("DELETE /sessions/{id}", g.handleDeleteSession)
	handle("POST /checkpoint", g.handleCheckpoint)
}

// dispatchAssign selects the binary frame path by Content-Type, like the
// backend routes do.
func (g *Gateway) dispatchAssign(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == WireContentType {
		g.handleAssignWire(w, r)
		return
	}
	g.handleAssign(w, r)
}

func (g *Gateway) dispatchAssignBatch(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == WireContentType {
		g.handleAssignBatchWire(w, r)
		return
	}
	g.handleAssignBatch(w, r)
}

// ---- key derivation ----

// sessionKey is the ring key of a streaming session. All session traffic —
// create, assign, delete — derives the same key, so a session's whole life
// happens on one backend.
func sessionKey(id string) string { return "s|" + id }

// rowKey is the ring key of one stateless assignment: model plus the exact
// row values. Identical queries always hit the same backend (warming that
// backend's traffic window coherently); the spread across backends comes
// from row diversity.
func rowKey(model string, row []int) string {
	var b strings.Builder
	b.Grow(len(model) + 2 + len(row)*3)
	b.WriteString("r|")
	b.WriteString(model)
	for _, v := range row {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ---- proxying ----

// do performs one backend JSON request — propagating the caller's
// correlation id when one is given — and returns the response status, body,
// and headers.
func (g *Gateway) do(method, backend, path string, body []byte, reqID string) (status int, data []byte, hdr http.Header, err error) {
	return g.doCT(g.client, method, backend, path, body, "application/json", reqID)
}

func (g *Gateway) doWith(client *http.Client, method, backend, path string, body []byte, reqID string) (status int, data []byte, hdr http.Header, err error) {
	return g.doCT(client, method, backend, path, body, "application/json", reqID)
}

func (g *Gateway) doCT(client *http.Client, method, backend, path string, body []byte, ctype, reqID string) (status int, data []byte, hdr http.Header, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://"+backend+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", ctype)
	}
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	if g.cfg.FleetSecret != "" {
		req.Header.Set(fleetSecretHeader, g.cfg.FleetSecret)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	g.noteStatus(backend, resp.StatusCode)
	return resp.StatusCode, data, resp.Header, nil
}

// noteStatus folds a backend verdict into the gateway's per-backend
// counters: a 429 means that backend's admission valve shed the request.
func (g *Gateway) noteStatus(backend string, status int) {
	if status == http.StatusTooManyRequests {
		if c := g.shedCounter(backend); c != nil {
			c.Add(1)
		}
	}
}

// relay writes a backend verdict through unchanged: status, Content-Type,
// Retry-After (the backpressure signal a shed caller must see), and body
// bytes verbatim — so a backend's 429 reaches the caller exactly as if it
// had hit that backend directly.
func relay(w http.ResponseWriter, status int, hdr http.Header, data []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// forward proxies one request to a backend and relays the response verbatim
// — the routed single-backend paths answer byte-identically to hitting that
// backend directly.
func (g *Gateway) forward(w http.ResponseWriter, method, backend, path string, body []byte, reqID string) {
	status, data, hdr, err := g.do(method, backend, path, body, reqID)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", backend, err)
		return
	}
	relay(w, status, hdr, data)
}

// reqIDOf reads the request's correlation id. The instrumentation middleware
// has already resolved it (accepted or minted) onto r.Header, so every
// handler forwards the exact id the gateway echoes and logs.
func reqIDOf(r *http.Request) string { return r.Header.Get(RequestIDHeader) }

// readBody slurps a request body (bounded), reporting decode-style errors
// the same way the backend would.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return nil, false
	}
	return data, true
}

// ---- routed endpoints ----

func (g *Gateway) handleAssign(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var req assignRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return
	}
	switch {
	case req.Session != "":
		g.forwardSession(w, http.MethodPost, req.Session, "/v1/assign", raw, reqIDOf(r))
	case req.Model != "":
		key := rowKey(req.Model, req.Row)
		if g.cfg.HedgeAfter > 0 {
			g.forwardStatelessHedged(w, key, "/v1/assign", raw, reqIDOf(r))
			return
		}
		g.forwardStateless(w, http.MethodPost, key, "/v1/assign", raw, reqIDOf(r))
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "request names neither a model nor a session")
	}
}

func (g *Gateway) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var req sessionRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return
	}
	// An empty session id routes like any other key; the owning backend's
	// validation rejects it with the same error a direct client would see.
	// When the ring owner is unreachable, the session is born on the next up
	// backend in its chain and an override records the off-ring placement.
	reqID := reqIDOf(r)
	var lastErr error
	for _, b := range g.sessionCandidates(req.Session) {
		if lastErr != nil && !g.isUp(b) {
			continue // skip known-down candidates once the owner has failed
		}
		status, data, hdr, err := g.doRetry(g.client, http.MethodPost, b, "/v1/sessions", raw, "application/json", reqID)
		if err != nil {
			lastErr = fmt.Errorf("backend %s: %w", b, err)
			if _, transient := classifyTransient(err); transient {
				continue
			}
			break
		}
		if status < http.StatusMultipleChoices && req.Session != "" {
			g.setOverride(req.Session, b)
		}
		relay(w, status, hdr, data)
		return
	}
	writeError(w, http.StatusBadGateway, codeBadGateway, "no backend could create the session: %v", lastErr)
}

func (g *Gateway) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.forwardSession(w, http.MethodDelete, id, "/v1/sessions/"+id, nil, reqIDOf(r))
	g.clearOverride(id)
	// Scrub stray replicas fleet-wide: after failovers and migrations, a copy
	// may be held off the current successor chain. Best-effort.
	for _, b := range g.backendList() {
		if g.isUp(b) {
			_, _, _, _ = g.do(http.MethodDelete, b, "/v1/replica/"+id, nil, "")
		}
	}
}

// handleAssignBatch scatters a batch across the fleet by row key and gathers
// the sub-responses back into the original row order. The merged response is
// rebuilt through the same writeJSON/struct path a backend uses, so a fleet
// answer is byte-identical to a single backend's as long as the backends
// serve the same snapshot epoch.
func (g *Gateway) handleAssignBatch(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch")
		return
	}
	reqID := reqIDOf(r)
	merged := batchResponse{Model: req.Model, Assignments: make([]assignResponse, len(req.Rows))}
	pending := make([]int, len(req.Rows))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	// Rounds of scatter/gather: rows whose backend failed transiently re-place
	// (the failure marked it down) and retry against the rest of the fleet.
	maxRounds := len(g.backendList()) + 1
	for round := 0; len(pending) > 0; round++ {
		if round >= maxRounds {
			writeError(w, http.StatusBadGateway, codeBadGateway, "batch could not complete: %v", lastErr)
			return
		}
		// Group pending row indices by placement (up-aware).
		groups := make(map[string][]int)
		for _, i := range pending {
			b := g.placeStateless(rowKey(req.Model, req.Rows[i]))
			groups[b] = append(groups[b], i)
		}
		if round == 0 && len(groups) == 1 {
			// Single owner and first attempt: forward the raw request — the
			// byte-identity fast path. A transient failure falls through to
			// the rerouting rounds.
			var b string
			for gb := range groups {
				b = gb
			}
			status, data, hdr, err := g.doRetry(g.client, http.MethodPost, b, "/v1/assign/batch", raw, "application/json", reqID)
			if err == nil {
				relay(w, status, hdr, data)
				return
			}
			lastErr = fmt.Errorf("backend %s: %w", b, err)
			if _, transient := classifyTransient(err); !transient {
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", b, err)
				return
			}
			continue
		}
		// Deterministic error precedence: scatter in sorted-backend order.
		order := sortedKeys(groups)
		type result struct {
			status int
			data   []byte
			hdr    http.Header
			err    error
			resp   batchResponse
		}
		results := make(map[string]*result, len(order))
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, b := range order {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				sub := batchRequest{Model: req.Model, Rows: make([][]int, 0, len(groups[b]))}
				for _, i := range groups[b] {
					sub.Rows = append(sub.Rows, req.Rows[i])
				}
				body, err := json.Marshal(sub)
				res := &result{err: err}
				if err == nil {
					res.status, res.data, res.hdr, res.err = g.doRetry(g.client, http.MethodPost, b, "/v1/assign/batch", body, "application/json", reqID)
				}
				if res.err == nil && res.status == http.StatusOK {
					res.err = json.Unmarshal(res.data, &res.resp)
				}
				mu.Lock()
				results[b] = res
				mu.Unlock()
			}(b)
		}
		wg.Wait()

		var retry []int
		for _, b := range order {
			res := results[b]
			if res.err != nil {
				lastErr = fmt.Errorf("backend %s: %w", b, res.err)
				if _, transient := classifyTransient(res.err); transient {
					retry = append(retry, groups[b]...) // re-place next round
					continue
				}
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", b, res.err)
				return
			}
			if res.status != http.StatusOK {
				// Relay the first failing backend's verdict verbatim — including
				// a shed's Retry-After (sorted order keeps the precedence
				// deterministic).
				relay(w, res.status, res.hdr, res.data)
				return
			}
			if len(res.resp.Assignments) != len(groups[b]) {
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s returned %d assignments for %d rows", b, len(res.resp.Assignments), len(groups[b]))
				return
			}
			for j, i := range groups[b] {
				merged.Assignments[i] = res.resp.Assignments[j]
			}
		}
		sort.Ints(retry)
		pending = retry
	}
	// The epoch of the backend that served row 0 (all backends agree when the
	// fleet serves one snapshot version, the deployment contract).
	merged.Epoch = merged.Assignments[0].Epoch
	writeJSON(w, http.StatusOK, merged)
}

// ---- broadcast endpoints ----

// broadcast sends the same request to every backend in sorted order and
// returns the membership snapshot it fanned out over plus the per-backend
// outcomes (aligned by index).
func (g *Gateway) broadcast(method, path string, body []byte, reqID string) (backends []string, statuses []int, bodies [][]byte, errs []error) {
	backends = g.backendList()
	statuses = make([]int, len(backends))
	bodies = make([][]byte, len(backends))
	errs = make([]error, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			statuses[i], bodies[i], _, errs[i] = g.do(method, b, path, body, reqID)
		}(i, b)
	}
	wg.Wait()
	return backends, statuses, bodies, errs
}

// relayBroadcast writes the aggregate outcome of a fleet-wide operation: the
// first backend's response when every backend succeeded, 502 naming the
// failures otherwise. Operations routed through here are idempotent
// (loading a snapshot, deleting a model, checkpointing), so a partial
// failure is safely retried.
func (g *Gateway) relayBroadcast(w http.ResponseWriter, backends []string, statuses []int, bodies [][]byte, errs []error) {
	var failures []string
	for i, b := range backends {
		switch {
		case errs[i] != nil:
			failures = append(failures, fmt.Sprintf("%s: %v", b, errs[i]))
		case statuses[i] >= http.StatusBadRequest:
			failures = append(failures, fmt.Sprintf("%s: status %d: %s", b, statuses[i], strings.TrimSpace(string(bodies[i]))))
		}
	}
	if len(failures) > 0 {
		writeError(w, http.StatusBadGateway, codeBadGateway, "%d/%d backends failed: %s", len(failures), len(backends), strings.Join(failures, "; "))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statuses[0])
	_, _ = w.Write(bodies[0])
}

func (g *Gateway) handleBroadcastModels(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	backends, statuses, bodies, errs := g.broadcast(http.MethodPost, "/v1/models", raw, reqIDOf(r))
	g.relayBroadcast(w, backends, statuses, bodies, errs)
}

func (g *Gateway) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	backends, statuses, bodies, errs := g.broadcast(http.MethodDelete, "/v1/models/"+r.PathValue("name"), nil, reqIDOf(r))
	g.relayBroadcast(w, backends, statuses, bodies, errs)
}

func (g *Gateway) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	backends, statuses, bodies, errs := g.broadcast(http.MethodPost, "/v1/checkpoint", nil, reqIDOf(r))
	g.relayBroadcast(w, backends, statuses, bodies, errs)
}

func (g *Gateway) handleListModels(w http.ResponseWriter, r *http.Request) {
	// Fleet-identical state: any healthy backend answers for all.
	backends := g.backendList()
	for _, b := range backends {
		if g.isUp(b) {
			g.forward(w, http.MethodGet, b, "/v1/models", nil, reqIDOf(r))
			return
		}
	}
	g.forward(w, http.MethodGet, backends[0], "/v1/models", nil, reqIDOf(r))
}

// ---- health and metrics ----

func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			// Probes fan out concurrently so one hung backend cannot slip
			// the whole fleet's cadence past -health.
			var wg sync.WaitGroup
			for _, b := range g.backendList() {
				wg.Add(1)
				go func(b string) {
					defer wg.Done()
					status, _, _, err := g.doWith(g.probe, http.MethodGet, b, "/v1/healthz", nil, "")
					healthy := err == nil && status == http.StatusOK
					flag := g.upFlag(b)
					if flag == nil {
						return // backend left the ring mid-probe
					}
					if was := flag.Swap(healthy); was != healthy {
						if healthy {
							g.log.Info("backend recovered", "backend", b)
						} else {
							g.log.Warn("backend went down", "backend", b, "status", status, "err", err)
						}
					}
				}(b)
			}
			wg.Wait()
		}
	}
}

// handleHealthz distinguishes three fleet states:
//
//   - "ok" (200): every backend answered its health probe.
//   - "degraded" (200): some backend is down, but at least one up backend
//     runs with replication enabled — the down backend's sessions are
//     covered by replica checkpoints and fail over on their next request,
//     so the fleet still serves everything it admitted.
//   - "down" (503): some backend is down and no surviving backend replicates
//     (its sessions are stranded until it returns), or every backend is down.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type backendHealth struct {
		Up          bool           `json:"up"`
		Models      map[string]int `json:"models,omitempty"`
		Sessions    int            `json:"sessions"`
		Replication bool           `json:"replication"`
	}
	type gwHealth struct {
		Status        string                   `json:"status"`
		UptimeSeconds float64                  `json:"uptime_seconds"`
		Backends      map[string]backendHealth `json:"backends"`
		Sessions      int                      `json:"sessions"`
	}
	backends := g.backendList()
	h := gwHealth{Status: "ok", UptimeSeconds: time.Since(g.start).Seconds(), Backends: make(map[string]backendHealth)}
	// Live probes, concurrent and short-timeout: the slowest backend (not
	// the sum of all of them) bounds the response, and a hung one costs the
	// probe timeout, not the proxy timeout.
	probed := make([]backendHealth, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			status, data, _, err := g.doWith(g.probe, http.MethodGet, b, "/v1/healthz", nil, reqIDOf(r))
			if err == nil && status == http.StatusOK {
				probed[i].Up = true
				var inner struct {
					Models      map[string]int `json:"models"`
					Sessions    int            `json:"sessions"`
					Replication bool           `json:"replication"`
				}
				if json.Unmarshal(data, &inner) == nil {
					probed[i].Models = inner.Models
					probed[i].Sessions = inner.Sessions
					probed[i].Replication = inner.Replication
				}
			}
		}(i, b)
	}
	wg.Wait()
	anyDown, covered := false, false
	for i, b := range backends {
		bh := probed[i]
		if f := g.upFlag(b); f != nil {
			f.Store(bh.Up)
		}
		h.Backends[b] = bh
		h.Sessions += bh.Sessions
		if !bh.Up {
			anyDown = true
		} else if bh.Replication {
			covered = true
		}
	}
	code := http.StatusOK
	if anyDown {
		if covered {
			h.Status = "degraded"
		} else {
			h.Status = "down"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, h)
}

func (g *Gateway) handleRing(w http.ResponseWriter, r *http.Request) {
	type ringInfo struct {
		Backends  []string        `json:"backends"`
		Up        map[string]bool `json:"up"`
		Overrides int             `json:"overrides"`
		Key       string          `json:"key,omitempty"`
		Session   string          `json:"session,omitempty"`
		Backend   string          `json:"backend,omitempty"`
	}
	backends := g.backendList()
	info := ringInfo{Backends: backends, Up: make(map[string]bool, len(backends))}
	for _, b := range backends {
		info.Up[b] = g.isUp(b)
	}
	g.placeMu.RLock()
	info.Overrides = len(g.overrides)
	g.placeMu.RUnlock()
	// ?session=<id> answers "which backend owns this session" (override
	// included); ?key=<k> places a raw ring key.
	if id := r.URL.Query().Get("session"); id != "" {
		info.Session = id
		info.Backend = g.placeSession(id)
	} else if key := r.URL.Query().Get("key"); key != "" {
		g.placeMu.RLock()
		info.Backend = g.ring.Get(key)
		g.placeMu.RUnlock()
		info.Key = key
	}
	writeJSON(w, http.StatusOK, info)
}

// handleMetrics sums every backend's Prometheus series and appends the
// gateway's own counters, so one scrape sees fleet-wide traffic.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	backends, _, bodies, errs := g.broadcast(http.MethodGet, "/v1/metrics", nil, reqIDOf(r))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	reachable := make([][]byte, 0, len(bodies))
	sources := make([]string, 0, len(bodies))
	for i := range bodies {
		if errs[i] == nil {
			reachable = append(reachable, bodies[i])
			sources = append(sources, backends[i])
		}
	}
	_, _ = w.Write(aggregateMetrics(reachable, sources))
	fmt.Fprintf(w, "# HELP mcdcd_gateway_backend_up Last health verdict per backend (1 = up).\n# TYPE mcdcd_gateway_backend_up gauge\n")
	for i, b := range backends {
		v := 0
		if g.isUp(b) && errs[i] == nil {
			v = 1
		}
		fmt.Fprintf(w, "mcdcd_gateway_backend_up{backend=%q} %d\n", b, v)
	}
	fmt.Fprintf(w, "# HELP mcdcd_gateway_backend_sheds_total Backend 429 responses observed by the gateway, per backend.\n# TYPE mcdcd_gateway_backend_sheds_total counter\n")
	for _, b := range backends {
		n := int64(0)
		if c := g.shedCounter(b); c != nil {
			n = c.Load()
		}
		fmt.Fprintf(w, "mcdcd_gateway_backend_sheds_total{backend=%q} %d\n", b, n)
	}
	fmt.Fprintf(w, "# HELP mcdcd_gateway_retries_total Transient-failure retries issued by the gateway, per backend.\n# TYPE mcdcd_gateway_retries_total counter\n")
	for _, b := range backends {
		n := int64(0)
		if c := g.retryCounter(b); c != nil {
			n = c.Load()
		}
		fmt.Fprintf(w, "mcdcd_gateway_retries_total{backend=%q} %d\n", b, n)
	}
	fmt.Fprintf(w, "# HELP mcdcd_gateway_failovers_total Sessions promoted onto a replica after their owner became unreachable.\n# TYPE mcdcd_gateway_failovers_total counter\nmcdcd_gateway_failovers_total %d\n", g.failovers.Load())
	fmt.Fprintf(w, "# HELP mcdcd_gateway_hedges_total Hedge requests launched against a slow backend.\n# TYPE mcdcd_gateway_hedges_total counter\nmcdcd_gateway_hedges_total %d\n", g.hedges.Load())
	g.httpm.write(w, "mcdcd_gateway_http_requests_total", "mcdcd_gateway_http_errors_total", "mcdcd_gateway_http_request_duration_seconds")
	fmt.Fprintf(w, "# HELP mcdcd_gateway_uptime_seconds Gateway uptime.\n# TYPE mcdcd_gateway_uptime_seconds gauge\nmcdcd_gateway_uptime_seconds %g\n", time.Since(g.start).Seconds())
	writeRuntimeMetrics(w, "mcdcd_gateway")
	writeBuildInfo(w, "mcdcd_gateway_build_info")
}

// maxAggregated lists the metric families whose per-backend values describe
// the same fleet-wide fact rather than additive shares of it: every backend
// serves the same snapshot, so its epoch is the fleet's epoch; summing
// uptimes fabricates a number no process ever had; and a fleet on one build
// has one version (N × "1" would read as a broken gauge). These take the max
// across backends; everything else — counters and additive gauges like live
// session counts — sums.
var maxAggregated = map[string]bool{
	"mcdcd_model_epoch":    true,
	"mcdcd_uptime_seconds": true,
	"mcdcd_build_info":     true,
}

// perBackendLabeled lists instantaneous point-in-time gauges whose sum across
// backends answers no operational question (a fleet-wide "queue depth 7"
// hides which backend is drowning). Instead of summing, the aggregator keeps
// each backend's sample as its own series with an injected backend label.
var perBackendLabeled = map[string]bool{
	"mcdcd_queue_depth":      true,
	"mcdcd_inflight":         true,
	"mcdcd_goroutines":       true,
	"mcdcd_heap_alloc_bytes": true,
}

// injectLabel rewrites a series key to carry key=val as its first label.
func injectLabel(series, key, val string) string {
	name, rest := series, ""
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name, rest = series[:i], series[i+1:len(series)-1]
	}
	if rest == "" {
		return fmt.Sprintf("%s{%s=%q}", name, key, val)
	}
	return fmt.Sprintf("%s{%s=%q,%s}", name, key, val, rest)
}

// aggregateMetrics merges Prometheus text expositions series-by-series:
// sample lines with the same name+labels sum (or max, per maxAggregated; or
// split into per-backend series, per perBackendLabeled), HELP/TYPE headers
// are kept once (from the first backend exposing them), and series order
// follows first appearance. Histograms merge bucket-by-bucket — every
// backend emits the identical precomputed `le` ladder (histogram.go), so
// same-labeled _bucket series line up exactly and _sum/_count stay
// consistent with the merged buckets. sources names the backend behind each
// body (aligned by index; used for the per-backend label injection).
func aggregateMetrics(bodies [][]byte, sources []string) []byte {
	type family struct {
		meta []string // HELP/TYPE lines, first exposure wins
	}
	var familyOrder []string
	families := make(map[string]*family)
	var seriesOrder []string
	sums := make(map[string]float64)
	ints := make(map[string]bool)
	seriesFamily := make(map[string]string)

	metricName := func(series string) string {
		if i := strings.IndexByte(series, '{'); i >= 0 {
			return series[:i]
		}
		return series
	}
	for bi, body := range bodies {
		src := ""
		if bi < len(sources) {
			src = sources[bi]
		}
		for _, line := range strings.Split(string(body), "\n") {
			line = strings.TrimRight(line, "\r")
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.Fields(line)
				if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
					continue
				}
				name := fields[2]
				f, ok := families[name]
				if !ok {
					f = &family{}
					families[name] = f
					familyOrder = append(familyOrder, name)
				}
				if len(f.meta) < 2 { // first backend's HELP+TYPE only
					dup := false
					for _, m := range f.meta {
						if strings.HasPrefix(m, "# "+fields[1]+" ") {
							dup = true
						}
					}
					if !dup {
						f.meta = append(f.meta, line)
					}
				}
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				continue
			}
			series, valStr := line[:sp], line[sp+1:]
			val, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				continue
			}
			if src != "" && perBackendLabeled[metricName(series)] {
				series = injectLabel(series, "backend", src)
			}
			first := false
			if _, ok := sums[series]; !ok {
				first = true
				seriesOrder = append(seriesOrder, series)
				ints[series] = true
				seriesFamily[series] = metricName(series)
			}
			// A series stays integer-formatted only while every
			// contribution is an integer.
			if strings.Contains(valStr, ".") || strings.ContainsAny(valStr, "eE") {
				ints[series] = false
			}
			if maxAggregated[seriesFamily[series]] {
				if first || val > sums[series] {
					sums[series] = val
				}
			} else {
				sums[series] += val
			}
		}
	}
	// A histogram or summary family's samples carry _bucket/_sum/_count
	// suffixes while its HELP/TYPE lines are registered under the base name —
	// resolve through the suffix so the metadata survives aggregation.
	metaFamily := func(fam string) string {
		if _, ok := families[fam]; ok {
			return fam
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam {
				if _, ok := families[base]; ok {
					return base
				}
			}
		}
		return fam
	}
	// Group the output by family, not by global first-seen order: a series
	// that only a later backend contributed (e.g. its backend-labeled gauge)
	// must still sit inside its family's block — the exposition format
	// requires a family's samples to be contiguous.
	var famOrder []string
	famSeries := make(map[string][]string)
	for _, series := range seriesOrder {
		fam := metaFamily(seriesFamily[series])
		if _, ok := famSeries[fam]; !ok {
			famOrder = append(famOrder, fam)
		}
		famSeries[fam] = append(famSeries[fam], series)
	}
	var out bytes.Buffer
	for _, fam := range famOrder {
		if f, ok := families[fam]; ok {
			for _, m := range f.meta {
				out.WriteString(m)
				out.WriteByte('\n')
			}
		}
		for _, series := range famSeries[fam] {
			if ints[series] {
				fmt.Fprintf(&out, "%s %d\n", series, int64(sums[series]))
			} else {
				fmt.Fprintf(&out, "%s %g\n", series, sums[series])
			}
		}
	}
	return out.Bytes()
}
