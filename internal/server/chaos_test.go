package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"mcdc/internal/testenv"
)

// Chaos suite: backends misbehave mid-traffic — killed, hung, blackholed —
// and the contract under test is absolute: every admitted request answers
// 200, and every session's answer stream stays byte-identical to an
// uninterrupted reference run. Faults are injected at the gateway's
// transport (testenv.FaultRoundTripper), so a specific backend can fail in a
// specific way without owning its process, and the suite runs under -race.

// chaosFleet boots a replicated 3-backend fleet fronted by a gateway whose
// transport is fault-injectable, plus a solo replicated reference daemon.
func chaosFleet(t *testing.T) (*testenv.FaultRoundTripper, *Gateway, string, []*Server, []string, string) {
	t.Helper()
	frt := testenv.NewFaultRoundTripper(nil)
	frt.HangDelay = 2 * time.Second
	gw, gts, backends, tss := gatewayFleetCfg(t, 3, Config{Replicate: true}, GatewayConfig{
		Timeout:      500 * time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Transport:    frt,
		FleetSecret:  "chaos",
	})
	snap, _, _ := trainModel(t, 200, 6, 3, 71)
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(tss))
	for i, ts := range tss {
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return frt, gw, gts.URL, backends, addrs, soloTS.URL
}

// sessionOwner asks the gateway which backend currently owns a session.
func sessionOwner(t *testing.T, gwURL, id string) string {
	t.Helper()
	_, data := get(t, gwURL+"/ring?session="+id)
	var ring struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(data, &ring); err != nil {
		t.Fatal(err)
	}
	return ring.Backend
}

// TestChaosOwnerFaultsMidStream drives one session per fault kind: its owner
// is killed / hung / blackholed mid-stream, the gateway fails over to the
// replica, and the stream finishes with zero failed requests and a tail
// byte-identical to the uninterrupted reference run.
func TestChaosOwnerFaultsMidStream(t *testing.T) {
	frt, gw, gwURL, _, _, soloURL := chaosFleet(t)
	_, rows, _ := trainModel(t, 200, 6, 3, 71)

	cut, total := 25, 60
	if testenv.Nightly() {
		cut, total = 80, 200
	}
	for si, kind := range []testenv.FaultKind{testenv.FaultKill, testenv.FaultHang, testenv.FaultBlackhole} {
		t.Run(kind.String(), func(t *testing.T) {
			id := fmt.Sprintf("chaos-%s", kind)
			createSession(t, gwURL, id, 40, int64(100+si))
			createSession(t, soloURL, id, 40, int64(100+si))
			head := feedSession(t, gwURL, id, rows, 0, cut)
			soloHead := feedSession(t, soloURL, id, rows, 0, cut)
			for i := range head {
				if head[i] != soloHead[i] {
					t.Fatalf("arrival %d diverged before the fault", i)
				}
			}

			owner := sessionOwner(t, gwURL, id)
			before := gw.failovers.Load()
			rule := frt.Add(&testenv.FaultRule{Host: owner, Kind: kind})
			// feedSession fails the test on any non-200: this is the
			// zero-failed-requests assertion.
			tail := feedSession(t, gwURL, id, rows, cut, total)
			frt.Remove(rule)
			soloTail := feedSession(t, soloURL, id, rows, cut, total)
			for i := range tail {
				if tail[i] != soloTail[i] {
					t.Fatalf("arrival %d diverged after the fault:\n fleet %q\n solo  %q", cut+i, tail[i], soloTail[i])
				}
			}
			if frt.Injected(kind) == 0 {
				t.Fatalf("no %s fault was actually injected", kind)
			}
			if gw.failovers.Load() <= before {
				t.Fatalf("owner fault did not trigger a failover (counter still %d)", before)
			}
		})
	}
}

// TestChaosStatelessTrafficReroutes blackholes one backend under pure
// stateless load: every row still answers 200 (rows re-place along the ring
// chain) and the answers match the reference daemon byte for byte.
func TestChaosStatelessTrafficReroutes(t *testing.T) {
	frt, _, gwURL, _, addrs, soloURL := chaosFleet(t)
	_, rows, _ := trainModel(t, 200, 6, 3, 71)

	n := 40
	if testenv.Nightly() {
		n = 160
	}
	rule := frt.Add(&testenv.FaultRule{Host: addrs[1], Kind: testenv.FaultBlackhole})
	defer frt.Remove(rule)
	for i := 0; i < n; i++ {
		body := map[string]any{"model": "m", "row": rows[i%len(rows)]}
		gresp, gdata := post(t, gwURL+"/assign", body)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("stateless row %d: %d %s", i, gresp.StatusCode, gdata)
		}
		sresp, sdata := post(t, soloURL+"/assign", body)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("solo row %d: %d", i, sresp.StatusCode)
		}
		if string(gdata) != string(sdata) {
			t.Fatalf("stateless row %d diverged:\n fleet %q\n solo  %q", i, gdata, sdata)
		}
	}
}

// TestHedgedStatelessSurvivesDownPrimary pins the hedged path's availability
// floor: with hedging enabled and a row's primary backend dead, the request
// must still answer 200 through the second backend — the hedge launches
// immediately when the primary fails, not only when the hedge timer fires —
// and the answer stays byte-identical to the reference daemon. (HedgeAfter is
// set far beyond the test's runtime, so only the failure-triggered launch can
// save these requests.)
func TestHedgedStatelessSurvivesDownPrimary(t *testing.T) {
	frt := testenv.NewFaultRoundTripper(nil)
	_, gts, backends, tss := gatewayFleetCfg(t, 3, Config{}, GatewayConfig{
		Timeout:      500 * time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		HedgeAfter:   time.Minute,
		Transport:    frt,
	})
	snap, rows, _ := trainModel(t, 200, 6, 3, 71)
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	solo, soloTS := newTestServer(t, Config{})
	if err := solo.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	dead := strings.TrimPrefix(tss[1].URL, "http://")
	rule := frt.Add(&testenv.FaultRule{Host: dead, Kind: testenv.FaultKill})
	defer frt.Remove(rule)
	for i := 0; i < 40; i++ {
		body := map[string]any{"model": "m", "row": rows[i%len(rows)]}
		gresp, gdata := post(t, gts.URL+"/assign", body)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("hedged row %d: %d %s", i, gresp.StatusCode, gdata)
		}
		sresp, sdata := post(t, soloTS.URL+"/assign", body)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("solo row %d: %d", i, sresp.StatusCode)
		}
		if string(gdata) != string(sdata) {
			t.Fatalf("hedged row %d diverged:\n fleet %q\n solo  %q", i, gdata, sdata)
		}
	}
	if frt.Injected(testenv.FaultKill) == 0 {
		t.Fatal("no request ever placed against the dead primary; the test exercised nothing")
	}
}

// TestAdoptReplacesStaleResident pins epoch fencing at installation time: a
// daemon that kept an old copy of a session (SIGKILLed and rejoined with its
// old state dir while the session moved on elsewhere) must not shadow the
// newer incoming state when the session migrates back — and, conversely, a
// genuinely stale incoming checkpoint must not roll a newer resident back.
func TestAdoptReplacesStaleResident(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 77)
	a, ats := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	b, bts := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	solo, soloTS := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir()})
	for _, s := range []*Server{a, b, solo} {
		if err := s.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	createSession(t, ats.URL, "mv", 40, 17)
	createSession(t, soloTS.URL, "mv", 40, 17)
	compareTail := func(url string, from, to int) {
		t.Helper()
		got := feedSession(t, url, "mv", rows, from, to)
		want := feedSession(t, soloTS.URL, "mv", rows, from, to)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arrival %d diverged:\n got  %q\n want %q", from+i, got[i], want[i])
			}
		}
	}
	fetchCkpt := func(url string) []byte {
		t.Helper()
		resp, data := get(t, url+"/sessions/mv/checkpoint")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("checkpoint fetch: %d %s", resp.StatusCode, data)
		}
		return data
	}
	adopt := func(url string, ckpt []byte) int64 {
		t.Helper()
		resp, err := http.Post(url+"/sessions/mv/adopt", "application/octet-stream", bytes.NewReader(ckpt))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("adopt: %d %s", resp.StatusCode, data)
		}
		var out struct {
			Epoch int64 `json:"epoch"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out.Epoch
	}

	compareTail(ats.URL, 0, 10)

	// Migrate mv to b (epoch 0 → 1). a's copy stays behind, live and on
	// disk — the stale-resident hazard under test.
	ckpt0 := fetchCkpt(ats.URL)
	if e := adopt(bts.URL, ckpt0); e != 1 {
		t.Fatalf("first adopt: epoch %d, want 1", e)
	}
	compareTail(bts.URL, 10, 20)

	// Migrate back to a: the incoming epoch-2 state must replace a's stale
	// epoch-0 resident, or the session would silently lose rows 10..20.
	ckpt1 := fetchCkpt(bts.URL)
	if e := adopt(ats.URL, ckpt1); e != 2 {
		t.Fatalf("migrate-back adopt: epoch %d, want 2", e)
	}
	compareTail(ats.URL, 20, 30)

	// A genuinely stale checkpoint (the original epoch-0 bytes) must not
	// roll the newer resident back.
	if e := adopt(ats.URL, ckpt0); e != 2 {
		t.Fatalf("stale adopt: epoch %d, want resident epoch 2", e)
	}
	compareTail(ats.URL, 30, 40)
}

// TestReplicaPromotionBitIdenticalTail is the property test for the
// replication layer itself, no gateway involved: a session is cut at a
// seeded-random request index by promoting its replica on the standby, the
// stream resumes there, and the tail is bit-identical to an uninterrupted
// run — at Workers 1, 2, and GOMAXPROCS (the WithParallelism determinism
// contract extends through checkpoint shipping and promotion).
func TestReplicaPromotionBitIdenticalTail(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 73)
	total := 80
	if testenv.Nightly() {
		total = 200
	}
	rng := rand.New(rand.NewSource(0x5eed))
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cut := 1 + rng.Intn(total-1)
			t.Logf("cut at request index %d of %d", cut, total)

			// Primary + standby, replication wired both ways.
			primary, pts := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir(), Workers: workers})
			standby, sts := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir(), Workers: workers})
			pAddr := strings.TrimPrefix(pts.URL, "http://")
			sAddr := strings.TrimPrefix(sts.URL, "http://")
			primary.ConfigureReplication(pAddr, []string{pAddr, sAddr}, "")
			standby.ConfigureReplication(sAddr, []string{pAddr, sAddr}, "")
			solo, soloTS := newTestServer(t, Config{Replicate: true, StateDir: t.TempDir(), Workers: workers})
			for _, s := range []*Server{primary, standby, solo} {
				if err := s.AddModel("m", snap); err != nil {
					t.Fatal(err)
				}
			}

			createSession(t, pts.URL, "prop", 40, 99)
			createSession(t, soloTS.URL, "prop", 40, 99)
			head := feedSession(t, pts.URL, "prop", rows, 0, cut)
			soloHead := feedSession(t, soloTS.URL, "prop", rows, 0, cut)
			for i := range head {
				if head[i] != soloHead[i] {
					t.Fatalf("arrival %d diverged before the cut", i)
				}
			}

			// "Kill" the primary by promoting its replica on the standby —
			// the exact operation a gateway failover performs.
			resp, data := post(t, sts.URL+"/sessions/prop/promote", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("promote on standby: %d %s", resp.StatusCode, data)
			}
			pts.Close()
			primary.Close()

			tail := feedSession(t, sts.URL, "prop", rows, cut, total)
			soloTail := feedSession(t, soloTS.URL, "prop", rows, cut, total)
			for i := range tail {
				if tail[i] != soloTail[i] {
					t.Fatalf("arrival %d diverged after promotion:\n standby %q\n solo    %q", cut+i, tail[i], soloTail[i])
				}
			}
		})
	}
}
