package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionPrimitive exercises the valve directly: slots fill, the
// queue absorbs the next wave, overflow sheds, and a canceled waiter leaves
// without being counted as overload.
func TestAdmissionPrimitive(t *testing.T) {
	a := newAdmission(1, 1, 0)
	if got := a.acquire(context.Background()); got != admitted {
		t.Fatalf("first acquire: %v", got)
	}

	// Second caller parks in the queue.
	queued := make(chan admitOutcome, 1)
	go func() { queued <- a.acquire(context.Background()) }()
	waitFor(t, func() bool { return a.depth() == 1 })

	// Third caller overflows the queue and sheds immediately.
	if got := a.acquire(context.Background()); got != shedOverload {
		t.Fatalf("overflow acquire: %v", got)
	}
	if a.shed.Load() != 1 {
		t.Fatalf("shed count %d, want 1", a.shed.Load())
	}

	// Releasing the slot admits the queued caller — it was never dropped.
	a.release()
	if got := <-queued; got != admitted {
		t.Fatalf("queued acquire resolved %v, want admitted", got)
	}
	a.release()

	// A waiter whose context dies leaves the queue without shedding.
	if a.acquire(context.Background()) != admitted {
		t.Fatal("reacquire")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admitOutcome, 1)
	go func() { done <- a.acquire(ctx) }()
	waitFor(t, func() bool { return a.depth() == 1 })
	cancel()
	if got := <-done; got != shedCanceled {
		t.Fatalf("canceled acquire resolved %v", got)
	}
	if a.shed.Load() != 1 {
		t.Fatalf("cancel must not count as shed; shed=%d", a.shed.Load())
	}
	a.release()
	if a.depth() != 0 || a.inflight() != 0 {
		t.Fatalf("valve not drained: depth=%d inflight=%d", a.depth(), a.inflight())
	}
}

// TestAdmissionShedsWith429 pins the overload contract end to end: with the
// slot pool full and the queue full, an assign answers 429 with Retry-After
// and the overloaded envelope code; the queued request is admitted and
// completes once the slot frees; and /metrics surfaces the shed and the
// queue depth.
func TestAdmissionShedsWith429(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 7)
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	// Occupy the only in-flight slot directly — deterministic, no timing
	// games with a slow request.
	s.admission.slots <- struct{}{}

	// One request parks in the queue...
	type reply struct {
		status int
		data   []byte
	}
	queued := make(chan reply, 1)
	go func() {
		resp, data := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[0]})
		queued <- reply{resp.StatusCode, data}
	}()
	waitFor(t, func() bool { return s.admission.depth() == 1 })

	// ...metrics see it waiting...
	_, mdata := get(t, ts.URL+"/v1/metrics")
	if want := "mcdcd_queue_depth 1"; !contains(mdata, want) {
		t.Fatalf("metrics missing %q:\n%s", want, mdata)
	}

	// ...and the next request sheds: 429, Retry-After, stable code.
	resp, data := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[1]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	var env errorResponse
	if err := json.Unmarshal(data, &env); err != nil || env.Code != codeOverloaded {
		t.Fatalf("shed envelope %s (err %v), want code %q", data, err, codeOverloaded)
	}

	// Freeing the slot admits the queued request — accepted work is never
	// dropped by overload.
	<-s.admission.slots
	r := <-queued
	if r.status != http.StatusOK {
		t.Fatalf("queued request finished %d: %s", r.status, r.data)
	}

	_, mdata = get(t, ts.URL+"/v1/metrics")
	for _, want := range []string{"mcdcd_shed_total 1", "mcdcd_queue_depth 0", "mcdcd_inflight 0"} {
		if !contains(mdata, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mdata)
		}
	}
}

// TestAdmissionHammer mixes overload-level concurrency with hot swaps and
// session eviction under -race: every request must resolve as either a
// success or a clean 429 — never a dropped or corrupted response.
func TestAdmissionHammer(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 11)
	s, ts := newTestServer(t, Config{MaxInFlight: 2, QueueDepth: 2, SessionShards: 4})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() { // hot-swap churn
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				_ = s.AddModel("m", snap)
			}
		}
	}()
	go func() { // session churn + eviction
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				id := fmt.Sprintf("hammer-%d", i%8)
				_ = s.sessions.create(id, snap.Cardinalities, 0, 1, 1)
				if i%3 == 0 {
					s.sessions.remove(id)
				}
				if i%17 == 0 {
					s.SweepSessions(time.Nanosecond)
				}
			}
		}
	}()

	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, data := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[(w*40+i)%len(rows)]})
				switch resp.StatusCode {
				case http.StatusOK:
					var a assignResponse
					if err := json.Unmarshal(data, &a); err != nil {
						t.Errorf("accepted response corrupted: %v (%s)", err, data)
					}
					ok.Add(1)
				case http.StatusTooManyRequests:
					var env errorResponse
					if err := json.Unmarshal(data, &env); err != nil || env.Code != codeOverloaded {
						t.Errorf("shed without envelope: %s", data)
					}
					shed.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if total := ok.Load() + shed.Load() + other.Load(); total != 8*40 {
		t.Fatalf("accounted %d/%d requests", total, 8*40)
	}
	if ok.Load() == 0 {
		t.Fatal("overload starved every request; admission must keep serving")
	}
	if s.admission.depth() != 0 || s.admission.inflight() != 0 {
		t.Fatalf("valve not drained: depth=%d inflight=%d", s.admission.depth(), s.admission.inflight())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func contains(data []byte, s string) bool { return strings.Contains(string(data), s) }
