package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mcdc/internal/hashring"
)

// Gateway fault tolerance. Three layers turn backend loss and ring changes
// into non-events for clients:
//
//  1. Retry with capped exponential backoff: a transiently failed backend
//     request (connection refused/reset, timeout, severed connection) is
//     retried in place; application errors are relayed verbatim, never
//     retried.
//  2. Failover: when a session's owner stays unreachable, the gateway walks
//     the session's ring-successor chain promoting the first backend that
//     holds a replica checkpoint (bumping the ownership epoch, which fences
//     the zombie primary), records a placement override, and redelivers the
//     request — with the same request id, so the backend's replay cache
//     absorbs an ambiguous first delivery. Stateless traffic just reroutes
//     to the next up backend in the chain.
//  3. Live membership: POST /v1/ring/{join,leave} migrate moving sessions'
//     checkpoints under the exclusive placement lock, then cut the ring
//     over — no request ever places against a half-updated ring.
//
// Lock order is placeMu → stateMu, and network calls never happen under
// stateMu — so counters stay readable (noteStatus) from inside a membership
// change that holds placeMu exclusively.

// ---- per-backend state ----

// initBackendState registers the health/counter atomics for one backend.
func (g *Gateway) initBackendState(b string) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	up := &atomic.Bool{}
	up.Store(true)
	g.up[b] = up
	g.sheds[b] = &atomic.Int64{}
	g.retries[b] = &atomic.Int64{}
}

func (g *Gateway) dropBackendState(b string) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	delete(g.up, b)
	delete(g.sheds, b)
	delete(g.retries, b)
}

// backendList snapshots the membership for lock-free iteration.
func (g *Gateway) backendList() []string {
	g.placeMu.RLock()
	defer g.placeMu.RUnlock()
	return append([]string(nil), g.backends...)
}

func (g *Gateway) upFlag(b string) *atomic.Bool {
	g.stateMu.RLock()
	defer g.stateMu.RUnlock()
	return g.up[b]
}

func (g *Gateway) isUp(b string) bool {
	f := g.upFlag(b)
	return f != nil && f.Load()
}

// markDown records a passively detected failure (a transient transport error
// on live traffic) so placement stops preferring the backend before the next
// health-probe tick.
func (g *Gateway) markDown(b string) {
	if f := g.upFlag(b); f != nil && f.Swap(false) {
		g.log.Warn("backend marked down on transport failure", "backend", b)
	}
}

func (g *Gateway) shedCounter(b string) *atomic.Int64 {
	g.stateMu.RLock()
	defer g.stateMu.RUnlock()
	return g.sheds[b]
}

func (g *Gateway) retryCounter(b string) *atomic.Int64 {
	g.stateMu.RLock()
	defer g.stateMu.RUnlock()
	return g.retries[b]
}

// ---- placement ----

// placeSession returns the backend that owns a session: a recorded override
// (failover or migration placement) wins over the ring.
func (g *Gateway) placeSession(id string) string {
	g.placeMu.RLock()
	defer g.placeMu.RUnlock()
	return g.placeLocked(id)
}

// placeLocked is placeSession with placeMu already held.
func (g *Gateway) placeLocked(id string) string {
	if b, ok := g.overrides[id]; ok {
		return b
	}
	return g.ring.Get(sessionKey(id))
}

// placeStateless returns the first up backend in the key's ring-successor
// chain. With the whole fleet up this is exactly the ring owner — the
// deterministic placement the byte-identity contract pins — and with owners
// down, stateless traffic (which any backend can serve) slides along the
// chain instead of failing.
func (g *Gateway) placeStateless(key string) string {
	g.placeMu.RLock()
	chain := g.ring.GetN(key, g.ring.Len())
	g.placeMu.RUnlock()
	for _, b := range chain {
		if g.isUp(b) {
			return b
		}
	}
	if len(chain) > 0 {
		return chain[0] // nothing is marked up; let the request fail honestly
	}
	return ""
}

// statelessPair returns the first two up backends in the key's chain — the
// primary placement plus the hedge target.
func (g *Gateway) statelessPair(key string) (first, second string) {
	g.placeMu.RLock()
	chain := g.ring.GetN(key, g.ring.Len())
	g.placeMu.RUnlock()
	for _, b := range chain {
		if !g.isUp(b) {
			continue
		}
		if first == "" {
			first = b
			continue
		}
		return first, b
	}
	return first, ""
}

// sessionCandidates returns the session's full ring-successor chain — the
// failover search order.
func (g *Gateway) sessionCandidates(id string) []string {
	g.placeMu.RLock()
	defer g.placeMu.RUnlock()
	return g.ring.GetN(sessionKey(id), g.ring.Len())
}

func (g *Gateway) setOverride(id, backend string) {
	g.placeMu.Lock()
	defer g.placeMu.Unlock()
	if g.ring.Get(sessionKey(id)) == backend {
		delete(g.overrides, id) // back on ring placement; no override needed
		return
	}
	g.overrides[id] = backend
}

func (g *Gateway) clearOverride(id string) {
	g.placeMu.Lock()
	defer g.placeMu.Unlock()
	delete(g.overrides, id)
}

// ---- transient-error classification and retry ----

// classifyTransient sorts a backend request error into retryable transport
// failures (the backend or network died; the request may not have been
// processed) vs everything else (caller cancellation, malformed requests) —
// only the former justify retry and failover.
func classifyTransient(err error) (kind string, transient bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, context.Canceled):
		return "canceled", false
	case errors.Is(err, syscall.ECONNREFUSED):
		return "refused", true
	case errors.Is(err, syscall.ECONNRESET):
		return "reset", true
	case errors.Is(err, syscall.EPIPE):
		return "pipe", true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout", true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "eof", true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return "net:" + oe.Op, true
	}
	// The HTTP transport wraps some mid-body failures in plain error strings;
	// a severed connection is transient by nature.
	if s := err.Error(); strings.Contains(s, "connection reset") || strings.Contains(s, "broken pipe") ||
		strings.Contains(s, "server closed") || strings.Contains(s, "transport connection broken") ||
		strings.Contains(s, "EOF") {
		return "severed", true
	}
	return "other", false
}

const (
	defaultRetries      = 2
	defaultRetryBackoff = 25 * time.Millisecond
	maxRetryBackoff     = time.Second
)

func (g *Gateway) retryBudget() (attempts int, backoff time.Duration) {
	switch {
	case g.cfg.Retries < 0:
		attempts = 1
	case g.cfg.Retries == 0:
		attempts = 1 + defaultRetries
	default:
		attempts = 1 + g.cfg.Retries
	}
	backoff = g.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	return attempts, backoff
}

// doRetry is doCT plus the transient-failure retry loop: capped exponential
// backoff against the same backend, counting mcdcd_gateway_retries_total per
// re-attempt. It returns the last error once the budget is exhausted
// (marking the backend down) or immediately on a non-transient failure.
func (g *Gateway) doRetry(client *http.Client, method, backend, path string, body []byte, ctype, reqID string) (status int, data []byte, hdr http.Header, err error) {
	attempts, backoff := g.retryBudget()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if c := g.retryCounter(backend); c != nil {
				c.Add(1)
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
		status, data, hdr, err = g.doCT(client, method, backend, path, body, ctype, reqID)
		if err == nil {
			return status, data, hdr, nil
		}
		kind, transient := classifyTransient(err)
		if !transient {
			return 0, nil, nil, err
		}
		g.log.Warn("transient backend failure", "backend", backend, "path", path, "kind", kind, "attempt", i+1, "err", err)
	}
	g.markDown(backend)
	return 0, nil, nil, err
}

// ---- session failover ----

// failoverSession walks the session's ring-successor chain promoting the
// first backend that holds a replica of the session. On success the
// placement override is recorded and the new owner returned. failed is the
// backend that just proved unreachable and is skipped.
func (g *Gateway) failoverSession(id, reqID, failed string) (string, bool) {
	for _, b := range g.sessionCandidates(id) {
		if b == failed {
			continue
		}
		status, data, _, err := g.do(http.MethodPost, b, "/v1/sessions/"+id+"/promote", nil, reqID)
		if err != nil {
			if _, transient := classifyTransient(err); transient {
				g.markDown(b)
			}
			continue
		}
		switch status {
		case http.StatusOK:
			g.setOverride(id, b)
			g.failovers.Add(1)
			g.log.Warn("session failed over", "session", id, "from", failed, "to", b)
			return b, true
		case http.StatusNotFound:
			continue // no replica held there; keep walking the chain
		default:
			g.log.Warn("promote refused", "session", id, "backend", b, "status", status, "body", strings.TrimSpace(string(data)))
		}
	}
	return "", false
}

// probeSessionOwner finds which up backend actually holds a session the
// placed backend answered unknown_session for — the recovery path after a
// gateway restart lost its overrides (placement knowledge outlives the
// gateway in the backends themselves).
func (g *Gateway) probeSessionOwner(id, placed string) (string, bool) {
	for _, b := range g.backendList() {
		if b == placed || !g.isUp(b) {
			continue
		}
		status, data, _, err := g.do(http.MethodGet, b, "/v1/sessions", nil, "")
		if err != nil || status != http.StatusOK {
			continue
		}
		var inv struct {
			Sessions []string `json:"sessions"`
		}
		if json.Unmarshal(data, &inv) != nil {
			continue
		}
		for _, have := range inv.Sessions {
			if have == id {
				g.setOverride(id, b)
				g.log.Info("relocated session by fleet probe", "session", id, "backend", b)
				return b, true
			}
		}
	}
	return "", false
}

// bodyHasCode reports whether an error envelope names the stable code.
func bodyHasCode(data []byte, code string) bool {
	return strings.Contains(string(data), `"`+code+`"`)
}

// forwardSession delivers one session-routed request with the full recovery
// ladder: retry in place, then failover to a promoted replica, then a fleet
// probe for a relocated session — redelivering with the same request id so
// the replay cache keeps an ambiguously delivered assignment exactly-once.
func (g *Gateway) forwardSession(w http.ResponseWriter, method, id, path string, body []byte, reqID string) {
	backend := g.placeSession(id)
	status, data, hdr, err := g.doRetry(g.client, method, backend, path, body, "application/json", reqID)
	if err != nil {
		if _, transient := classifyTransient(err); transient {
			if next, ok := g.failoverSession(id, reqID, backend); ok {
				status, data, hdr, err = g.doRetry(g.client, method, next, path, body, "application/json", reqID)
			}
		}
		if err != nil {
			writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", backend, err)
			return
		}
		relay(w, status, hdr, data)
		return
	}
	if status == http.StatusNotFound && bodyHasCode(data, codeUnknownSession) {
		// The placed backend does not know the session. It may live elsewhere
		// under an override this gateway no longer remembers; ask the fleet.
		if owner, ok := g.probeSessionOwner(id, backend); ok {
			if s2, d2, h2, err2 := g.doRetry(g.client, method, owner, path, body, "application/json", reqID); err2 == nil {
				relay(w, s2, h2, d2)
				return
			}
		}
	}
	relay(w, status, hdr, data)
}

// forwardStateless delivers one stateless request, re-placing along the ring
// chain as backends prove unreachable (doRetry marks them down). Stateless
// assignments are pure reads of the shared snapshot, so redelivery anywhere
// is always safe.
func (g *Gateway) forwardStateless(w http.ResponseWriter, method, key, path string, body []byte, reqID string) {
	tried := make(map[string]bool)
	var lastErr error
	for range g.backendList() {
		b := g.placeStateless(key)
		if b == "" || tried[b] {
			break
		}
		tried[b] = true
		status, data, hdr, err := g.doRetry(g.client, method, b, path, body, "application/json", reqID)
		if err == nil {
			relay(w, status, hdr, data)
			return
		}
		lastErr = fmt.Errorf("backend %s: %w", b, err)
		if _, transient := classifyTransient(err); !transient {
			break
		}
	}
	writeError(w, http.StatusBadGateway, codeBadGateway, "no backend could serve the request: %v", lastErr)
}

// forwardStatelessHedged races a hedge request against a slow primary: if
// the placed backend has not answered within HedgeAfter, the same request
// launches against the next up backend in the chain and the first answer
// wins. Only stateless traffic hedges — it is idempotent by construction.
func (g *Gateway) forwardStatelessHedged(w http.ResponseWriter, key, path string, body []byte, reqID string) {
	first, second := g.statelessPair(key)
	if first == "" || second == "" {
		g.forwardStateless(w, http.MethodPost, key, path, body, reqID)
		return
	}
	type hres struct {
		backend string
		status  int
		data    []byte
		hdr     http.Header
		err     error
	}
	ch := make(chan hres, 2)
	launch := func(b string) {
		go func() {
			status, data, hdr, err := g.doRetry(g.client, http.MethodPost, b, path, body, "application/json", reqID)
			ch <- hres{b, status, data, hdr, err}
		}()
	}
	launch(first)
	launched := 1
	timer := time.NewTimer(g.cfg.HedgeAfter)
	defer timer.Stop()
	failed := 0
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				relay(w, res.status, res.hdr, res.data)
				return
			}
			if _, transient := classifyTransient(res.err); !transient {
				writeError(w, http.StatusBadGateway, codeBadGateway, "backend %s: %v", res.backend, res.err)
				return
			}
			failed++
			if launched == 1 {
				// The primary died before the hedge timer fired. Launch the
				// second backend immediately — hedged mode must never be less
				// available than the plain chain walk.
				launch(second)
				launched = 2
				continue
			}
			if failed == launched {
				// Both the primary and the hedge failed transiently; fall back
				// to the chain walk over whatever is still up (doRetry marked
				// the failures down, so placement skips them).
				g.forwardStateless(w, http.MethodPost, key, path, body, reqID)
				return
			}
		case <-timer.C:
			if launched == 1 {
				g.hedges.Add(1)
				launch(second)
				launched = 2
			}
		}
	}
}

// ---- ring membership ----

type ringChangeRequest struct {
	Backend string `json:"backend"`
}

// handleRingJoin adds a backend to the ring: sessions whose placement moves
// onto the new backend are migrated (checkpoint fetched from the current
// holder, adopted by the joiner, deleted at the source), then the ring cuts
// over atomically under the exclusive placement lock.
func (g *Gateway) handleRingJoin(w http.ResponseWriter, r *http.Request) {
	var req ringChangeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	b := strings.TrimSpace(req.Backend)
	if b == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "join needs a backend address")
		return
	}
	g.placeMu.Lock()
	defer g.placeMu.Unlock()
	for _, have := range g.backends {
		if have == b {
			writeError(w, http.StatusConflict, codeConflict, "backend %s is already a ring member", b)
			return
		}
	}
	next := hashring.New(g.cfg.Replicas)
	next.Add(g.backends...)
	next.Add(b)
	moved, err := g.migrateSessionsLocked(next, func(id string) (from, to string, migrate bool) {
		from = g.placeLocked(id)
		to = next.Get(sessionKey(id))
		return from, to, to == b && from != b
	})
	if err != nil {
		writeError(w, http.StatusBadGateway, codeBadGateway, "join migration: %v", err)
		return
	}
	g.ring = next
	g.backends = append(g.backends, b)
	sort.Strings(g.backends)
	g.initBackendState(b)
	g.broadcastFleetLocked()
	g.log.Info("backend joined ring", "backend", b, "sessions_migrated", len(moved))
	writeJSON(w, http.StatusOK, map[string]any{"backend": b, "migrated": moved, "members": append([]string(nil), g.backends...)})
}

// handleRingLeave removes a backend. A live leaver's sessions are migrated
// to their new owners first (drain); a dead leaver's sessions are promoted
// from their replicas wherever those are held. Then the ring cuts over and
// the remaining fleet's membership view is refreshed.
func (g *Gateway) handleRingLeave(w http.ResponseWriter, r *http.Request) {
	var req ringChangeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	b := strings.TrimSpace(req.Backend)
	g.placeMu.Lock()
	defer g.placeMu.Unlock()
	member := false
	for _, have := range g.backends {
		if have == b {
			member = true
		}
	}
	if !member {
		writeError(w, http.StatusNotFound, codeBadRequest, "backend %s is not a ring member", b)
		return
	}
	if len(g.backends) == 1 {
		writeError(w, http.StatusConflict, codeConflict, "cannot remove the last backend")
		return
	}
	next := hashring.New(g.cfg.Replicas)
	for _, have := range g.backends {
		if have != b {
			next.Add(have)
		}
	}
	var moved []string
	var err error
	if g.isUp(b) {
		moved, err = g.migrateSessionsLocked(next, func(id string) (from, to string, migrate bool) {
			from = g.placeLocked(id)
			return from, next.Get(sessionKey(id)), from == b
		})
	} else {
		moved, err = g.promoteOrphansLocked(b, next)
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, codeBadGateway, "leave migration: %v", err)
		return
	}
	g.ring = next
	kept := g.backends[:0:0]
	for _, have := range g.backends {
		if have != b {
			kept = append(kept, have)
		}
	}
	g.backends = kept
	g.dropBackendState(b)
	for id, ob := range g.overrides {
		if ob == b {
			delete(g.overrides, id) // migrated/promoted above; fall back to ring
		}
	}
	g.broadcastFleetLocked()
	g.log.Info("backend left ring", "backend", b, "sessions_migrated", len(moved))
	writeJSON(w, http.StatusOK, map[string]any{"backend": b, "migrated": moved, "members": append([]string(nil), g.backends...)})
}

// migrateSessionsLocked enumerates every resident session fleet-wide and
// moves those the plan selects: fetch the current checkpoint from the
// holder, adopt on the target (which bumps the ownership epoch, fencing the
// source), delete at the source, and record the new placement against the
// next ring. placeMu is held exclusively — routing is paused, so no
// assignment can slip between the checkpoint fetch and the cutover.
func (g *Gateway) migrateSessionsLocked(next *hashring.Ring, plan func(id string) (from, to string, migrate bool)) ([]string, error) {
	moved := []string{}
	for _, holder := range g.backends {
		if !g.isUp(holder) {
			continue
		}
		status, data, _, err := g.do(http.MethodGet, holder, "/v1/sessions", nil, "")
		if err != nil || status != http.StatusOK {
			continue
		}
		var inv struct {
			Sessions []string `json:"sessions"`
		}
		if json.Unmarshal(data, &inv) != nil {
			continue
		}
		sort.Strings(inv.Sessions)
		for _, id := range inv.Sessions {
			from, to, migrate := plan(id)
			if !migrate || from != holder || to == "" || to == from {
				continue
			}
			st, ckpt, _, err := g.do(http.MethodGet, from, "/v1/sessions/"+id+"/checkpoint", nil, "")
			if err != nil || st != http.StatusOK {
				return moved, fmt.Errorf("fetch checkpoint of %q from %s: status %d err %v", id, from, st, err)
			}
			st, body, _, err := g.doCT(g.client, http.MethodPost, to, "/v1/sessions/"+id+"/adopt", ckpt, "application/octet-stream", "")
			if err != nil || st != http.StatusOK {
				return moved, fmt.Errorf("adopt %q on %s: status %d err %v: %s", id, to, st, err, strings.TrimSpace(string(body)))
			}
			// The source's copy is now fenced (adopt bumped the epoch); delete
			// it so it cannot shadow the move. Best-effort.
			if st, _, _, err := g.do(http.MethodDelete, from, "/v1/sessions/"+id, nil, ""); err != nil || st >= 300 {
				g.log.Warn("source session delete failed after migration", "session", id, "backend", from, "status", st, "err", err)
			}
			if next.Get(sessionKey(id)) == to {
				delete(g.overrides, id)
			} else {
				g.overrides[id] = to
			}
			moved = append(moved, id)
		}
	}
	return moved, nil
}

// promoteOrphansLocked recovers a dead backend's sessions during leave:
// every replica held anywhere whose owner (under the outgoing placement)
// was the dead backend is promoted where it lies. placeMu held exclusively.
func (g *Gateway) promoteOrphansLocked(dead string, next *hashring.Ring) ([]string, error) {
	moved := []string{}
	for _, holder := range g.backends {
		if holder == dead || !g.isUp(holder) {
			continue
		}
		status, data, _, err := g.do(http.MethodGet, holder, "/v1/sessions", nil, "")
		if err != nil || status != http.StatusOK {
			continue
		}
		var inv struct {
			Replicas []string `json:"replicas"`
		}
		if json.Unmarshal(data, &inv) != nil {
			continue
		}
		sort.Strings(inv.Replicas)
		for _, id := range inv.Replicas {
			if g.placeLocked(id) != dead {
				continue
			}
			st, body, _, err := g.do(http.MethodPost, holder, "/v1/sessions/"+id+"/promote", nil, "")
			if err != nil || st != http.StatusOK {
				return moved, fmt.Errorf("promote %q on %s: status %d err %v: %s", id, holder, st, err, strings.TrimSpace(string(body)))
			}
			if next.Get(sessionKey(id)) == holder {
				delete(g.overrides, id)
			} else {
				g.overrides[id] = holder
			}
			g.failovers.Add(1)
			moved = append(moved, id)
		}
	}
	return moved, nil
}

// broadcastFleetLocked pushes the new membership to every up backend so
// replica shipping re-aims at the new successors. placeMu held.
func (g *Gateway) broadcastFleetLocked() {
	body, _ := json.Marshal(map[string][]string{"peers": g.backends})
	for _, b := range g.backends {
		if !g.isUp(b) {
			continue
		}
		if st, data, _, err := g.do(http.MethodPost, b, "/v1/fleet", body, ""); err != nil || st >= 300 {
			g.log.Warn("fleet membership push failed", "backend", b, "status", st, "err", err, "body", strings.TrimSpace(string(data)))
		}
	}
}
