package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// feedSession posts rows[from:to] to the session and returns the raw
// response bodies (byte-level comparison pins the full wire contract, not
// just the decoded fields).
func feedSession(t *testing.T, url, id string, rows [][]int, from, to int) []string {
	t.Helper()
	out := make([]string, 0, to-from)
	for i := from; i < to; i++ {
		resp, data := post(t, url+"/assign", map[string]any{"session": id, "row": rows[i%len(rows)]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assign row %d: %d %s", i, resp.StatusCode, data)
		}
		out = append(out, string(data))
	}
	return out
}

func createSession(t *testing.T, url, id string, window int, seed int64) {
	t.Helper()
	resp, data := post(t, url+"/sessions", map[string]any{"session": id, "model": "m", "window": window, "seed": seed})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session %s: %d %s", id, resp.StatusCode, data)
	}
}

// TestCheckpointRestartResumesBitIdentical is the durability acceptance
// property: a daemon killed after flushing its sessions and restarted from
// -state-dir continues every stream bit-for-bit with an uninterrupted run.
//
// Checkpointing rotates the session's random stream (see stream.Snapshot),
// so the uninterrupted reference performs an explicit checkpoint at the same
// stream position the killed daemon flushed at — exactly the cut-point
// parity a deployment gets from its periodic checkpoint cadence. The tail
// covers several re-learnings (window 40, 140 tail rows), so the property
// holds across model refreshes, not just between them.
func TestCheckpointRestartResumesBitIdentical(t *testing.T) {
	snap, rows, _ := trainModel(t, 300, 6, 3, 23)
	const cut, total, window = 60, 200, 40

	run := func(dir string) (*Server, *httptest.Server) {
		s, err := New(Config{StateDir: dir, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}

	// Uninterrupted reference: checkpoint at the cut, keep feeding.
	refDir := t.TempDir()
	refSrv, refTS := run(refDir)
	defer refTS.Close()
	defer refSrv.Close()
	if err := refSrv.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	createSession(t, refTS.URL, "alpha", window, 9)
	createSession(t, refTS.URL, "beta", window, 11)
	feedSession(t, refTS.URL, "alpha", rows, 0, cut)
	feedSession(t, refTS.URL, "beta", rows, 0, cut)
	resp, data := post(t, refTS.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"checkpointed":2`) {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, data)
	}
	refTailA := feedSession(t, refTS.URL, "alpha", rows, cut, total)
	refTailB := feedSession(t, refTS.URL, "beta", rows, cut, total)

	// Killed run: same prefix, graceful shutdown (flushes the same cut), a
	// fresh daemon restores from the state dir and serves the tail.
	killDir := t.TempDir()
	srv1, ts1 := run(killDir)
	if err := srv1.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	createSession(t, ts1.URL, "alpha", window, 9)
	createSession(t, ts1.URL, "beta", window, 11)
	feedSession(t, ts1.URL, "alpha", rows, 0, cut)
	feedSession(t, ts1.URL, "beta", rows, 0, cut)
	ts1.Close()
	srv1.Close() // graceful shutdown = final checkpoint flush

	srv2, ts2 := run(killDir)
	defer ts2.Close()
	defer srv2.Close()
	// No model re-load needed: sessions are self-contained. The restart must
	// report both sessions live before any traffic touches them.
	if got := srv2.sessions.count(); got != 2 {
		t.Fatalf("restart restored %d sessions, want 2", got)
	}
	if got := srv2.sessions.restored.Load(); got != 2 {
		t.Fatalf("restored counter = %d, want 2", got)
	}
	tailA := feedSession(t, ts2.URL, "alpha", rows, cut, total)
	tailB := feedSession(t, ts2.URL, "beta", rows, cut, total)

	if !reflect.DeepEqual(tailA, refTailA) {
		t.Errorf("session alpha: post-restart tail diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(tailB, refTailB) {
		t.Errorf("session beta: post-restart tail diverged from the uninterrupted run")
	}
	// The tail must include at least one re-learning for the property to
	// mean anything across refreshes.
	var last struct {
		Epoch int `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(tailA[len(tailA)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Epoch < 2 {
		t.Fatalf("tail ended at epoch %d; want ≥ 2 so the property covers re-learnings", last.Epoch)
	}
}

// TestSessionDeleteRemovesCheckpoint pins DELETE semantics in a durable
// pool: a deleted session must not resurrect on restart or lazy page-in.
func TestSessionDeleteRemovesCheckpoint(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 31)
	dir := t.TempDir()
	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	createSession(t, ts.URL, "doomed", 30, 3)
	feedSession(t, ts.URL, "doomed", rows, 0, 10)
	if n := s.CheckpointSessions(); n != 1 {
		t.Fatalf("checkpointed %d sessions, want 1", n)
	}
	ckpt := filepath.Join(dir, "sessions", "doomed.ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/doomed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived the delete: %v", err)
	}
	// No lazy page-in of a deleted session.
	resp2, _ := post(t, ts.URL+"/assign", map[string]any{"session": "doomed", "row": rows[0]})
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still serves: %d", resp2.StatusCode)
	}
	// And the id is free for re-creation.
	createSession(t, ts.URL, "doomed", 30, 3)
}

// TestDurablePoolRejectsTraversalIds pins the path guard on the durable
// pool's disk paths: a crafted session id must neither read nor unlink
// files outside the state dir (resident ids are validated at create time;
// the assign page-in and delete paths take ids straight off the wire).
func TestDurablePoolRejectsTraversalIds(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 61)
	dir := t.TempDir()
	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	// A bystander file one level above the sessions dir, where "../x" points.
	victim := filepath.Join(dir, "x.ckpt")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../x", "..", "a/b", "x\x00y"} {
		resp, _ := post(t, ts.URL+"/assign", map[string]any{"session": id, "row": rows[0]})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("assign with id %q: %d, want 404", id, resp.StatusCode)
		}
		if s.sessions.remove(id) {
			t.Errorf("remove(%q) claimed success", id)
		}
	}
	if data, err := os.ReadFile(victim); err != nil || string(data) != "precious" {
		t.Fatalf("bystander file touched: %v %q", err, data)
	}
}

// TestSessionTTLBoundsPool is the create-heavy load property: with a TTL the
// pool's live-session count collapses to the working set once sessions go
// idle, the evictions surface in /metrics, and (memory-only pool) evicted
// ids are gone for good.
func TestSessionTTLBoundsPool(t *testing.T) {
	snap, rows, _ := trainModel(t, 150, 5, 2, 37)
	s, err := New(Config{}) // sweep driven explicitly for determinism
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	const created = 200
	for i := 0; i < created; i++ {
		createSession(t, ts.URL, fmt.Sprintf("s%03d", i), 30, int64(i+1))
	}
	feedSession(t, ts.URL, "s000", rows, 0, 3)
	if got := s.sessions.count(); got != created {
		t.Fatalf("pool holds %d sessions, want %d", got, created)
	}
	time.Sleep(30 * time.Millisecond)
	// Keep one session hot across the idle gap.
	feedSession(t, ts.URL, "s000", rows, 3, 4)
	if n := s.SweepSessions(25 * time.Millisecond); n != created-1 {
		t.Fatalf("sweep evicted %d sessions, want %d", n, created-1)
	}
	if got := s.sessions.count(); got != 1 {
		t.Fatalf("pool holds %d sessions after sweep, want 1 (the hot one)", got)
	}
	_, data := get(t, ts.URL+"/metrics")
	if want := fmt.Sprintf("mcdcd_sessions_evicted_total %d", created-1); !strings.Contains(string(data), want) {
		t.Errorf("metrics missing %q", want)
	}
	// Memory-only pool: eviction is deletion.
	resp, _ := post(t, ts.URL+"/assign", map[string]any{"session": "s117", "row": rows[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still serves: %d", resp.StatusCode)
	}
	// The hot session is untouched.
	feedSession(t, ts.URL, "s000", rows, 4, 6)
}

// TestEvictionSpillsAndPagesBackIn pins the durable-pool eviction contract:
// an idle session spills to disk, a later touch pages it back in, and the
// combined stream is bit-identical to one that was never evicted.
func TestEvictionSpillsAndPagesBackIn(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 41)
	const cut, total, window = 50, 130, 40

	run := func(dir string) (*Server, *httptest.Server) {
		s, err := New(Config{StateDir: dir, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		return s, ts
	}

	// Reference: checkpoint (= the rotation the eviction performs) at the
	// cut, no eviction.
	refSrv, refTS := run(t.TempDir())
	if err := refSrv.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	createSession(t, refTS.URL, "s", window, 13)
	feedSession(t, refTS.URL, "s", rows, 0, cut)
	refSrv.CheckpointSessions()
	refTail := feedSession(t, refTS.URL, "s", rows, cut, total)

	// Evicted: same prefix, sweep with zero-tolerance TTL, then keep going —
	// the first post-eviction assign pages the session back in.
	evSrv, evTS := run(t.TempDir())
	if err := evSrv.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	createSession(t, evTS.URL, "s", window, 13)
	feedSession(t, evTS.URL, "s", rows, 0, cut)
	time.Sleep(2 * time.Millisecond)
	if n := evSrv.SweepSessions(time.Millisecond); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if got := evSrv.sessions.count(); got != 0 {
		t.Fatalf("session still resident after eviction: count=%d", got)
	}
	tail := feedSession(t, evTS.URL, "s", rows, cut, total)
	if evSrv.sessions.restored.Load() != 1 {
		t.Fatalf("restored counter = %d, want 1 (page-in)", evSrv.sessions.restored.Load())
	}
	if !reflect.DeepEqual(tail, refTail) {
		t.Error("evict + page-in diverged from the uninterrupted stream")
	}
}

// TestConcurrentSessionLifecycleRace is the -race hammer over the full
// session lifecycle: concurrent create / assign / sweep-evict / checkpoint /
// delete traffic against a durable pool while a model hot swap runs. It
// asserts liveness and the absence of data races; the deterministic
// properties live in the tests above.
func TestConcurrentSessionLifecycleRace(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 43)
	snap2, _, _ := trainModel(t, 200, 6, 3, 44)
	dir := t.TempDir()
	s, err := New(Config{StateDir: dir, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}

	const goroutines, iters, ids = 10, 30, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("h%d", (g+i)%ids)
				switch g % 5 {
				case 0: // creator (conflicts expected)
					resp, data := post(t, ts.URL+"/sessions", map[string]any{"session": id, "model": "m", "window": 30, "seed": int64(g + 1)})
					if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
						errs <- fmt.Errorf("create %s: %d %s", id, resp.StatusCode, data)
						return
					}
				case 1, 2, 3: // assigner (missing sessions expected)
					resp, data := post(t, ts.URL+"/assign", map[string]any{"session": id, "row": rows[(g*iters+i)%len(rows)]})
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						errs <- fmt.Errorf("assign %s: %d %s", id, resp.StatusCode, data)
						return
					}
				case 4: // deleter
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
						errs <- fmt.Errorf("delete %s: %d", id, resp.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent maintenance: evictions, checkpoints, and a hot swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.SweepSessions(time.Microsecond) // everything idle is fair game
			s.CheckpointSessions()
			if i == 10 {
				if err := s.AddModel("m", snap2); err != nil {
					errs <- err
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The daemon is still coherent: metrics render and sessions still serve.
	if _, data := get(t, ts.URL+"/metrics"); !strings.Contains(string(data), "mcdcd_sessions_evicted_total") {
		t.Errorf("metrics incoherent after hammer: %s", data)
	}
}
