package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// lintExposition parses a full Prometheus text exposition and enforces the
// format rules a scraper relies on: every line is a comment or a well-formed
// sample, HELP/TYPE metadata precedes its family's samples, a family's
// samples are contiguous, histogram buckets are cumulative and monotone with
// +Inf equal to _count, and every histogram carries _sum and _count.
func lintExposition(t *testing.T, body string) {
	t.Helper()
	metaSeen := map[string]bool{}   // families with HELP or TYPE emitted
	typeOf := map[string]string{}   // family -> declared TYPE
	sampleSeen := map[string]bool{} // families that already emitted samples
	closed := map[string]bool{}     // families whose sample block has ended
	var curFam string

	// family resolves a sample name to its metric family: histogram/summary
	// sample names carry _bucket/_sum/_count suffixes.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && (typeOf[base] == "histogram" || typeOf[base] == "summary") {
				return base
			}
		}
		return name
	}

	type histState struct {
		lastCum int64
		inf     int64
		hasInf  bool
		count   int64
		hasCnt  bool
		hasSum  bool
	}
	hists := map[string]*histState{} // per series (family + labels sans le)
	histOf := func(series string) *histState {
		if hists[series] == nil {
			hists[series] = &histState{lastCum: -1}
		}
		return hists[series]
	}

	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("line %d: malformed comment %q", lineNo, line)
				continue
			}
			fam := parts[2]
			if sampleSeen[fam] {
				t.Errorf("line %d: %s for %s appears after its samples", lineNo, parts[1], fam)
			}
			metaSeen[fam] = true
			if parts[1] == "TYPE" {
				if len(parts) < 4 {
					t.Errorf("line %d: TYPE without a type: %q", lineNo, line)
					continue
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Errorf("line %d: unknown TYPE %q", lineNo, parts[3])
				}
				typeOf[fam] = parts[3]
			}
			continue
		}

		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("line %d: malformed sample %q", lineNo, line)
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Errorf("line %d: bad sample value %q: %v", lineNo, valStr, err)
			continue
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("line %d: unterminated label set %q", lineNo, series)
				continue
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		fam := family(name)
		if fam != curFam {
			if sampleSeen[fam] {
				t.Errorf("line %d: family %s samples are not contiguous", lineNo, fam)
			}
			closed[curFam] = true
			curFam = fam
		}
		if closed[fam] {
			t.Errorf("line %d: family %s reopened after closing", lineNo, fam)
		}
		sampleSeen[fam] = true

		if typeOf[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := ""
			var other []string // the series identity minus the le pair
			rest := labels
			for rest != "" {
				kv := rest
				if c := strings.IndexByte(rest, ','); c >= 0 {
					kv, rest = rest[:c], rest[c+1:]
				} else {
					rest = ""
				}
				if v, ok := strings.CutPrefix(kv, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				} else {
					other = append(other, kv)
				}
			}
			if le == "" {
				t.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				continue
			}
			cum, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket count %q not an integer: %v", lineNo, valStr, err)
				continue
			}
			h := histOf(fam + "|" + strings.Join(other, ","))
			if cum < h.lastCum {
				t.Errorf("line %d: bucket counts decrease (%d after %d) in %q", lineNo, cum, h.lastCum, series)
			}
			h.lastCum = cum
			if le == "+Inf" {
				h.inf, h.hasInf = cum, true
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Errorf("line %d: unparsable le bound %q", lineNo, le)
			}
		case strings.HasSuffix(name, "_sum"):
			histOf(fam + "|" + labels).hasSum = true
		case strings.HasSuffix(name, "_count"):
			cnt, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Errorf("line %d: _count %q not an integer: %v", lineNo, valStr, err)
				continue
			}
			h := histOf(fam + "|" + labels)
			h.count, h.hasCnt = cnt, true
		}
	}

	var keys []string
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		if !h.hasInf {
			t.Errorf("histogram series %q has no +Inf bucket", k)
			continue
		}
		if !h.hasSum || !h.hasCnt {
			t.Errorf("histogram series %q missing _sum or _count", k)
			continue
		}
		if h.inf != h.count {
			t.Errorf("histogram series %q: +Inf bucket %d != _count %d", k, h.inf, h.count)
		}
	}
}

// scrape GETs a /v1/metrics endpoint.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	return string(data)
}

// TestMetricsExpositionLint drives real traffic through every instrumented
// stage on a single daemon — assigns (single and batch), a session with a
// checkpoint, a shed — then lints the full exposition.
func TestMetricsExpositionLint(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 13)
	s, ts := newTestServer(t, Config{
		StateDir:    t.TempDir(),
		MaxInFlight: 2,
		QueueDepth:  1,
	})
	if err := s.AddModel("m", snap); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[:10] {
		if resp, data := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": row}); resp.StatusCode != http.StatusOK {
			t.Fatalf("assign: %d (%s)", resp.StatusCode, data)
		}
	}
	if resp, data := post(t, ts.URL+"/v1/assign/batch", map[string]any{"model": "m", "rows": rows[10:40]}); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d (%s)", resp.StatusCode, data)
	}
	if resp, data := post(t, ts.URL+"/v1/sessions", map[string]any{"session": "s1", "model": "m"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("session: %d (%s)", resp.StatusCode, data)
	}
	if resp, data := post(t, ts.URL+"/v1/assign", map[string]any{"session": "s1", "row": rows[40]}); resp.StatusCode != http.StatusOK {
		t.Fatalf("session assign: %d (%s)", resp.StatusCode, data)
	}
	if resp, data := post(t, ts.URL+"/v1/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d (%s)", resp.StatusCode, data)
	}
	// Force one shed so the error paths show up in the exposition too.
	s.admission.slots <- struct{}{}
	s.admission.slots <- struct{}{}
	done := make(chan struct{})
	go func() { // fill the queue slot with a parked request
		post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[41]})
		close(done)
	}()
	for s.admission.depth() == 0 {
	}
	if resp, _ := post(t, ts.URL+"/v1/assign", map[string]any{"model": "m", "row": rows[42]}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected a shed, got %d", resp.StatusCode)
	}
	<-s.admission.slots
	<-s.admission.slots
	<-done

	body := scrape(t, ts.URL)
	lintExposition(t, body)

	// The series the issue promises must exist with signal in them.
	for _, want := range []string{
		`mcdcd_assign_latency_seconds_bucket{le="+Inf"}`,
		`mcdcd_stage_duration_seconds_bucket{stage="assign",le=`,
		`mcdcd_stage_duration_seconds_bucket{stage="queue_wait",le=`,
		`mcdcd_stage_duration_seconds_bucket{stage="batch_chunk",le=`,
		`mcdcd_stage_duration_seconds_bucket{stage="checkpoint",le=`,
		`mcdcd_stage_duration_seconds_bucket{stage="relearn",le=`,
		`mcdcd_http_request_duration_seconds_bucket{endpoint="POST /v1/assign",le=`,
		"mcdcd_goroutines ",
		"mcdcd_heap_alloc_bytes ",
		"mcdcd_gc_pause_seconds_total ",
		fmt.Sprintf("mcdcd_build_info{version=%q,", Version),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for series, min := range map[string]int64{
		"mcdcd_assign_latency_seconds_count":                      12, // 11 singles + 1 session assign (batch counts per-row there too)
		`mcdcd_stage_duration_seconds_count{stage="checkpoint"}`:  1,
		`mcdcd_stage_duration_seconds_count{stage="batch_chunk"}`: 1,
		`mcdcd_stage_duration_seconds_count{stage="queue_wait"}`:  1,
	} {
		got := seriesValue(t, body, series)
		if got < min {
			t.Errorf("%s = %d, want >= %d", series, got, min)
		}
	}
}

// seriesValue extracts one integer sample value from an exposition.
func seriesValue(t *testing.T, body, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			t.Fatalf("series %s value %q: %v", series, rest, err)
		}
		return v
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// TestGatewayMetricsExpositionLint lints the aggregated gateway exposition:
// merged backend histograms plus the gateway's own families must still be a
// valid exposition, and point-in-time gauges must appear per backend.
func TestGatewayMetricsExpositionLint(t *testing.T) {
	snap, rows, _ := trainModel(t, 200, 6, 3, 17)
	_, gts, backends, tss := gatewayFleet(t, 2, Config{MaxInFlight: 4})
	for _, b := range backends {
		if err := b.AddModel("m", snap); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range rows[:20] {
		if resp, data := post(t, gts.URL+"/v1/assign", map[string]any{"model": "m", "row": row}); resp.StatusCode != http.StatusOK {
			t.Fatalf("assign: %d (%s)", resp.StatusCode, data)
		}
	}
	body := scrape(t, gts.URL)
	lintExposition(t, body)

	if got := seriesValue(t, body, "mcdcd_assign_total"); got != 20 {
		t.Errorf("aggregated mcdcd_assign_total = %d, want 20", got)
	}
	if got := seriesValue(t, body, "mcdcd_assign_latency_seconds_count"); got != 20 {
		t.Errorf("aggregated latency _count = %d, want 20", got)
	}
	for _, ts := range tss {
		addr := strings.TrimPrefix(ts.URL, "http://")
		if !strings.Contains(body, fmt.Sprintf("mcdcd_queue_depth{backend=%q} ", addr)) {
			t.Errorf("no per-backend queue depth for %s", addr)
		}
	}
	for _, want := range []string{
		"mcdcd_gateway_http_requests_total",
		"mcdcd_gateway_goroutines ",
		fmt.Sprintf("mcdcd_gateway_build_info{version=%q,", Version),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("gateway exposition missing %q", want)
		}
	}
}
