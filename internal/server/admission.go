package server

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// admission is the serving path's backpressure valve: a bounded in-flight
// slot pool plus a bounded wait queue in front of it. Up to MaxInFlight
// requests execute concurrently; the next QueueDepth wait their turn; anyone
// beyond that is shed immediately with 429 + Retry-After. Overload therefore
// degrades predictably — bounded concurrency bounds the live request memory
// (bodies, batch buffers, session page-ins), and the shed path costs one
// atomic and a tiny JSON write — instead of letting unbounded goroutines OOM
// the session pool. Accepted requests are never dropped: once a slot is
// acquired the request runs to completion.
type admission struct {
	slots      chan struct{} // capacity = MaxInFlight
	queueMax   int64
	waiting    atomic.Int64 // requests parked in the wait queue
	shed       atomic.Int64 // requests rejected with 429
	admitted   atomic.Int64 // requests that acquired a slot
	retryAfter time.Duration
}

// newAdmission builds the valve; maxInFlight ≤ 0 disables admission control
// (the constructor returns nil and the middleware passes through).
func newAdmission(maxInFlight, queueDepth int, retryAfter time.Duration) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &admission{
		slots:      make(chan struct{}, maxInFlight),
		queueMax:   int64(queueDepth),
		retryAfter: retryAfter,
	}
}

// admitOutcome reports how acquire resolved.
type admitOutcome int

const (
	admitted admitOutcome = iota
	shedOverload
	shedCanceled // caller went away while queued — not an overload verdict
)

// acquire takes an in-flight slot, waiting in the bounded queue when all
// slots are busy. It sheds instead of waiting once the queue is full, and
// abandons the wait if ctx ends first (a disconnected client must not hold a
// queue position).
func (a *admission) acquire(ctx context.Context) admitOutcome {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return admitted
	default:
	}
	if a.waiting.Add(1) > a.queueMax {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return shedOverload
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return admitted
	case <-ctx.Done():
		return shedCanceled
	}
}

func (a *admission) release() { <-a.slots }

// depth reports the live queue length (waiting requests).
func (a *admission) depth() int64 { return a.waiting.Load() }

// inflight reports the occupied slots.
func (a *admission) inflight() int { return len(a.slots) }

// retryAfterSeconds is the Retry-After header value: whole seconds, rounded
// up, at least 1 (the header speaks integer seconds).
func (a *admission) retryAfterSeconds() int {
	s := int((a.retryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// admit wraps an assignment handler with the valve. Non-assignment endpoints
// (health, metrics, model management) stay outside it: an overloaded daemon
// must remain observable and operable.
func (s *Server) admit(fn http.HandlerFunc) http.HandlerFunc {
	if s.admission == nil {
		return fn
	}
	return func(w http.ResponseWriter, r *http.Request) {
		waitStart := time.Now()
		outcome := s.admission.acquire(r.Context())
		// Queue wait is recorded for every outcome: an admitted request's time
		// to a slot, and a canceled one's time to abandonment, are both real
		// waits an operator wants in the stage histogram.
		s.metrics.queueWait.observe(time.Since(waitStart))
		switch outcome {
		case shedOverload:
			w.Header().Set("Retry-After", strconv.Itoa(s.admission.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, codeOverloaded,
				"server at capacity (%d in flight, %d queued); retry after %ds",
				cap(s.admission.slots), s.admission.queueMax, s.admission.retryAfterSeconds())
			return
		case shedCanceled:
			// The client is gone; any status is unobservable. 503 keeps the
			// error counters honest without claiming overload.
			//lint:mcdcvet-ignore errenvelope canceled client cannot observe a body; bare status keeps counters honest
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		defer s.admission.release()
		fn(w, r)
	}
}
