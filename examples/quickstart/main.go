// Quickstart: cluster a categorical benchmark data set with MCDC and
// evaluate against the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcdc"
)

func main() {
	// Generate the Vote benchmark (232 members of congress, 16 roll-call
	// votes, 2 parties). Any CSV of qualitative features works the same way
	// via mcdc.ReadCSVFile.
	ds, err := mcdc.Builtin("Vot.", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data set:", ds)

	// Step 1 — explore: MGCPL discovers the nested multi-granular cluster
	// structure without being told a number of clusters.
	mg, err := mcdc.Explore(ds, mcdc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granularities discovered: kappa = %v (estimate of k* = %d)\n",
		mg.Kappa, mg.EstimatedK())

	// Step 2 — cluster: the full MCDC pipeline aggregates the granularities
	// into a final partition with the sought number of clusters.
	res, err := mcdc.Cluster(ds, 2, mcdc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	fmt.Printf("final partition sizes: %v\n", sizes)
	fmt.Printf("granularity importances theta: %.3f\n", res.Theta)

	// Step 3 — evaluate against the known party labels.
	sc, err := mcdc.Evaluate(ds.Labels, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ACC=%.3f ARI=%.3f AMI=%.3f FM=%.3f\n", sc.ACC, sc.ARI, sc.AMI, sc.FM)
}
