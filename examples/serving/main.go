// Model serving: the batch-train / online-assign split. A model is trained
// once, frozen to a versioned snapshot file, and served by the mcdcd daemon
// core over HTTP — the long-lived service a scheduler consults to ask
// "which performance-consistent group does this node belong to?" without
// ever re-learning in-process. Queries go through the typed client package,
// first over JSON and then over the pipelined binary frame protocol; the
// two answer identically.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"

	"mcdc"
	"mcdc/client"
	"mcdc/internal/server"
)

func main() {
	ctx := context.Background()

	// 1. Train offline and freeze the model (what `mcdc -save` does).
	ds := mcdc.SyntheticDataset("nodes", 600, 8, 3, 1)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "mcdc-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nodes.bin")
	if err := m.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained and froze model: k=%d, kappa=%v → %s\n", m.K(), m.Kappa(), path)

	// 2. Serve it (what `mcdcd -model nodes=nodes.bin` does).
	srv, err := server.New(server.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.LoadModelFile("nodes", path); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("mcdcd core listening on %s\n", ln.Addr())

	// 3. Query it through the typed client.
	c := client.New(ln.Addr().String())
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}
	models, err := c.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthz ok; serving %q (k=%d, %d features)\n", models[0].Name, models[0].K, models[0].Features)

	a, err := c.Assign(ctx, "nodes", ds.Rows[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assign row 0 → cluster %d (similarity %.2f, epoch %d); training label was %d\n",
		a.Cluster, a.Similarity, a.Epoch, res.Labels[0])

	batch, err := c.AssignBatch(ctx, "nodes", ds.Rows[:10])
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i, ba := range batch {
		if ba.Cluster == res.Labels[i] {
			agree++
		}
	}
	fmt.Printf("batch assign: %d/%d rows match the in-process labels\n", agree, len(batch))

	// 4. Same queries over the binary frame protocol — byte-identical
	// answers on one persistent pipelined connection.
	cb := client.New(ln.Addr().String(), client.WithBinary())
	many, err := cb.AssignMany(ctx, "nodes", ds.Rows[:10])
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(many, batch) {
		log.Fatalf("binary pipelined answers diverge from JSON batch:\n%v\nvs\n%v", many, batch)
	}
	fmt.Printf("binary pipelined assign: %d rows, identical to the JSON answers\n", len(many))

	// Stable error codes make failures machine-checkable.
	if _, err := c.Assign(ctx, "ghost", ds.Rows[0]); !client.IsCode(err, "unknown_model") {
		log.Fatalf("expected unknown_model, got %v", err)
	}
	fmt.Println("unknown model rejected with the stable code unknown_model")
}
