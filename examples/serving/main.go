// Model serving: the batch-train / online-assign split. A model is trained
// once, frozen to a versioned snapshot file, and served by the mcdcd daemon
// core over HTTP — the long-lived service a scheduler consults to ask
// "which performance-consistent group does this node belong to?" without
// ever re-learning in-process.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"mcdc"
	"mcdc/internal/server"
)

func main() {
	// 1. Train offline and freeze the model (what `mcdc -save` does).
	ds := mcdc.SyntheticDataset("nodes", 600, 8, 3, 1)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "mcdc-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nodes.bin")
	if err := m.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained and froze model: k=%d, kappa=%v → %s\n", m.K(), m.Kappa(), path)

	// 2. Serve it (what `mcdcd -model nodes=nodes.bin` does).
	srv, err := server.New(server.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.LoadModelFile("nodes", path); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("mcdcd core listening on %s\n", base)

	// 3. Query it like any client would.
	var health struct {
		Status string         `json:"status"`
		Models map[string]int `json:"models"`
	}
	getJSON(base+"/healthz", &health)
	fmt.Printf("healthz: %s, models=%v\n", health.Status, health.Models)

	var a struct {
		Cluster    int     `json:"cluster"`
		Similarity float64 `json:"similarity"`
		Epoch      int     `json:"epoch"`
	}
	postJSON(base+"/assign", map[string]any{"model": "nodes", "row": ds.Rows[0]}, &a)
	fmt.Printf("assign row 0 → cluster %d (similarity %.2f, epoch %d); training label was %d\n",
		a.Cluster, a.Similarity, a.Epoch, res.Labels[0])

	var batch struct {
		Assignments []struct {
			Cluster int `json:"cluster"`
		} `json:"assignments"`
	}
	postJSON(base+"/assign/batch", map[string]any{"model": "nodes", "rows": ds.Rows[:10]}, &batch)
	agree := 0
	for i, ba := range batch.Assignments {
		if ba.Cluster == res.Labels[i] {
			agree++
		}
	}
	fmt.Printf("batch assign: %d/%d rows match the in-process labels\n", agree, len(batch.Assignments))
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decodeBody(resp, v)
}

func postJSON(url string, body, v any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	decodeBody(resp, v)
}

func decodeBody(resp *http.Response, v any) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", resp.Status, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatal(err)
	}
}
