// Node grouping: the Fig. 1 scenario of the paper — compute nodes described
// by categorical features (GPU type, load levels, network tier, …) are
// grouped into performance-consistent pools by MCDC, so a scheduler can pick
// a uniform set of nodes for a distributed task.
//
//	go run ./examples/nodegrouping
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcdc"
	"mcdc/internal/distsim"
)

func main() {
	// A fleet of 400 nodes drawn from 5 latent hardware profiles. In a real
	// deployment this catalog would come from the cluster inventory.
	catalog := distsim.NodeCatalog(400, 5, rand.New(rand.NewSource(11)))
	fmt.Println("node catalog:", catalog)

	// MGCPL alone reveals how many natural node groups the fleet has.
	mg, err := mcdc.Explore(catalog, mcdc.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("natural group structure: kappa = %v\n", mg.Kappa)

	// Group the fleet into the estimated number of pools.
	pools := mg.EstimatedK()
	res, err := mcdc.Cluster(catalog, pools, mcdc.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}

	sizes := make(map[int]int)
	for _, l := range res.Labels {
		sizes[l]++
	}
	fmt.Printf("formed %d node pools; sizes %v\n", pools, sizes)

	// How uniform is each pool? (1.0 = every pool is a single hardware
	// profile — the property that lets pooled nodes collaborate at a
	// consistent pace.)
	consistency, err := distsim.GroupConsistency(catalog.Labels, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool performance-consistency: %.3f\n", consistency)

	// Show the dominant configuration of each pool, which is what a
	// scheduler would match task requirements against.
	for pool := 0; pool < pools; pool++ {
		counts := make([]map[int]int, catalog.D())
		for r := range counts {
			counts[r] = make(map[int]int)
		}
		total := 0
		for i, l := range res.Labels {
			if l != pool {
				continue
			}
			total++
			for r, v := range catalog.Rows[i] {
				counts[r][v]++
			}
		}
		fmt.Printf("pool %d (%d nodes):", pool, total)
		for r, f := range catalog.Features {
			best, bestC := 0, -1
			for v, c := range counts[r] {
				if c > bestC {
					best, bestC = v, c
				}
			}
			fmt.Printf(" %s=%s", f.Name, f.Values[best])
		}
		fmt.Println()
	}
}
