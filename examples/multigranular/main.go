// Multi-granular analysis: use MGCPL as an efficient alternative to
// hierarchical clustering for understanding the nested cluster structure of
// a categorical data set — the paper's core motivation (§I, Fig. 2).
//
//	go run ./examples/multigranular
package main

import (
	"fmt"
	"log"
	"sort"

	"mcdc"
)

func main() {
	ds, err := mcdc.Builtin("Car.", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data set:", ds)

	mg, err := mcdc.Explore(ds, mcdc.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MGCPL converged through %d granularity levels: kappa = %v\n\n",
		len(mg.Kappa), mg.Kappa)

	// Show how the fine clusters nest inside the coarse ones, level by
	// level: for each coarse cluster, which finer clusters feed it.
	for lv := len(mg.Levels) - 1; lv > 0; lv-- {
		coarse, fine := mg.Levels[lv], mg.Levels[lv-1]
		fmt.Printf("level %d (k=%d) <- level %d (k=%d):\n", lv+1, mg.Kappa[lv], lv, mg.Kappa[lv-1])
		feeds := make(map[int]map[int]int)
		for i := range coarse {
			if feeds[coarse[i]] == nil {
				feeds[coarse[i]] = make(map[int]int)
			}
			feeds[coarse[i]][fine[i]]++
		}
		coarseIDs := make([]int, 0, len(feeds))
		for c := range feeds {
			coarseIDs = append(coarseIDs, c)
		}
		sort.Ints(coarseIDs)
		for _, c := range coarseIDs {
			srcs := make([]int, 0, len(feeds[c]))
			for f := range feeds[c] {
				srcs = append(srcs, f)
			}
			sort.Ints(srcs)
			fmt.Printf("  coarse cluster %d absorbs fine clusters %v\n", c, srcs)
		}
	}

	// The per-level label vectors are also an embedding: any clustering
	// algorithm can consume mg.Encoding() — that is exactly what CAME and
	// the MCDC+G./MCDC+F. enhancer variants do.
	enc := mg.Encoding()
	fmt.Printf("\nencoding shape: %d objects x %d granularity columns\n", len(enc), len(enc[0]))
	fmt.Printf("object 0 encoding (its cluster id at each granularity): %v\n", enc[0])
}
