// Pre-partitioning for distributed computing: the §III-D(1) scenario of the
// paper. MCDC's multi-granular analysis divides a categorical data set into
// compact micro-clusters; a locality-preserving planner packs them onto
// compute nodes; and a real coordinator/worker pipeline (TCP + gob) computes
// distributed per-shard statistics that the coordinator merges.
//
//	go run ./examples/prepartition
package main

import (
	"fmt"
	"log"
	"sync"

	"mcdc"
	"mcdc/internal/distsim"
)

func main() {
	// The workload: the Mushroom benchmark (8124 objects, 22 categorical
	// features) to be processed by 4 compute nodes.
	ds, err := mcdc.Builtin("Mus.", 1)
	if err != nil {
		log.Fatal(err)
	}
	const nodes = 4
	fmt.Printf("data set: %s, target nodes: %d\n", ds, nodes)

	// 1. Multi-granular analysis. The FINEST granularity gives many compact
	// micro-clusters — ideal shard units: small enough to balance, cohesive
	// enough to preserve local correlations.
	mg, err := mcdc.Explore(ds, mcdc.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granularities: kappa = %v; sharding at the finest level (k = %d)\n",
		mg.Kappa, mg.Kappa[0])
	micro := mg.Levels[0]

	// 2. Locality-preserving placement: micro-clusters are never split
	// across nodes, loads stay balanced.
	plan, err := distsim.Plan(micro, nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: %d shards, node loads %v, imbalance %.3f\n",
		len(plan.Shards), plan.Load, plan.Imbalance())
	loss, err := distsim.LocalityLoss(micro, plan.ObjectNodes(ds.N()), nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locality loss: %.3f (0 = no micro-cluster split across nodes)\n", loss)

	// 3. Run the distributed pass for real: a coordinator serves shards
	// over TCP, four workers compute shard statistics concurrently.
	coord, err := distsim.NewCoordinator(ds.Rows, ds.Cardinalities(), plan)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := coord.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s\n", addr)

	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			processed, err := (&distsim.Worker{}).Run(addr)
			if err != nil {
				log.Printf("worker %d: %v", id, err)
				return
			}
			fmt.Printf("worker %d processed %d shards\n", id, processed)
		}(w)
	}

	stats := coord.Wait()
	wg.Wait()

	// 4. Merge the distributed statistics centrally.
	freq, total := distsim.MergeStats(stats, ds.Cardinalities())
	fmt.Printf("merged statistics from %d shards covering %d objects\n", len(stats), total)
	fmt.Printf("global mode of feature %q across all shards: %s\n",
		ds.Features[0].Name, ds.Features[0].Values[argmax(freq[0])])
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
