// Active learning: the paper's future-work direction (3) — use the
// multi-granular cluster structure to slash expert labeling effort. A few
// medoid queries per coarse cluster, propagated along the granularity
// hierarchy, label the whole data set.
//
//	go run ./examples/activelearning
package main

import (
	"fmt"
	"log"

	"mcdc"
)

func main() {
	// An unlabeled corpus of 2000 objects with 4 latent classes.
	ds := mcdc.SyntheticDataset("corpus", 2000, 10, 4, 5)
	truth := ds.Labels
	fmt.Printf("corpus: %d objects; an expert would label all of them by hand\n", ds.N())

	mg, err := mcdc.Explore(ds, mcdc.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-granular analysis: kappa = %v\n", mg.Kappa)

	// Ask for a tiny labeling budget: two queries per coarse cluster.
	budget := 2 * mg.EstimatedK()
	queries, err := mcdc.SelectQueries(ds, mg, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d objects to label (budget %d):\n", len(queries), budget)
	for _, q := range queries {
		fmt.Printf("  object %4d — medoid of a micro-cluster with %d members\n", q.Index, q.Weight)
	}

	// The "expert" answers from the hidden ground truth.
	answers := make(map[int]int, len(queries))
	for _, q := range queries {
		answers[q.Index] = truth[q.Index]
	}
	pred, err := mcdc.PropagateLabels(ds, mg, answers)
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	fmt.Printf("propagated %d expert labels to %d objects: accuracy %.1f%%\n",
		len(answers), ds.N(), 100*float64(correct)/float64(ds.N()))
	fmt.Printf("labeling effort reduced by %.1f%%\n", 100*(1-float64(len(answers))/float64(ds.N())))
}
