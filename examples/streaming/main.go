// Streaming clustering: the paper's future-work direction (2) — MCDC over
// dynamic data. A categorical stream is clustered online; when the
// underlying distribution shifts, the drift detector triggers a model
// re-learning and the granularity structure adapts.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"mcdc"
)

func main() {
	// Phase A: a 2-cluster regime; Phase B: a different 4-cluster regime.
	phaseA := mcdc.SyntheticDataset("phaseA", 600, 8, 2, 100)
	phaseB := mcdc.SyntheticDataset("phaseB", 600, 8, 4, 200)

	sc, err := mcdc.NewStreamClusterer(mcdc.StreamConfig{
		Cardinalities: phaseA.Cardinalities(),
		WindowSize:    300,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	feed := func(name string, ds *mcdc.Dataset) {
		var epochAtStart = sc.ModelEpoch()
		refreshes := 0
		for i, row := range ds.Rows {
			a, err := sc.Add(row)
			if err != nil {
				log.Fatal(err)
			}
			if a.ModelEpoch > epochAtStart+refreshes {
				refreshes++
				fmt.Printf("  [%s, object %4d] model re-learned (epoch %d): k=%d kappa=%v\n",
					name, i, a.ModelEpoch, sc.K(), sc.Kappa())
			}
		}
		fmt.Printf("%s done: model k=%d after %d refreshes\n", name, sc.K(), refreshes)
	}

	fmt.Println("streaming phase A (2 planted clusters):")
	feed("A", phaseA)
	fmt.Println("streaming phase B (distribution shift to 4 clusters):")
	feed("B", phaseB)
	fmt.Println("the drift detector re-learned the model and the cluster count adapted")
}
