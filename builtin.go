package mcdc

import "mcdc/internal/datasets"

// Builtin generates one of the built-in benchmark data sets of the paper's
// Table II by name ("Car.", "Con.", "Che.", "Mus.", "Tic.", "Vot.", "Bal.",
// "Nur.", full names also accepted). Rule data sets (Car., Tic., Bal., Nur.)
// are exact reconstructions of the UCI originals; the others are seeded
// generative stand-ins with the published schema (see DESIGN.md §3).
func Builtin(name string, seed int64) (*Dataset, error) {
	return datasets.Load(name, seed)
}

// BuiltinNames lists the available built-in data set names.
func BuiltinNames() []string { return datasets.Names() }

// SyntheticDataset generates a well-separated k-cluster categorical data set
// (the construction behind the paper's Syn_n / Syn_d scalability sets).
func SyntheticDataset(name string, n, d, k int, seed int64) *Dataset {
	return datasets.Synthetic(name, n, d, k, 0.85, newRand(seed))
}
