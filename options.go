package mcdc

import "math/rand"

// FinalClusterer is a pluggable algorithm applied to the Γ encoding in place
// of CAME: it receives the n×σ encoding, the per-column cardinalities, the
// sought k and a seeded random source, and returns dense cluster labels.
// The paper's MCDC+G. and MCDC+F. variants are instances of this hook (see
// EnhanceGUDMM and EnhanceFKMAWCW).
type FinalClusterer func(encoding [][]int, cardinalities []int, k int, rng *rand.Rand) ([]int, error)

type options struct {
	seed           int64
	learningRate   float64
	initialK       int
	ensemble       int
	workers        int
	finalClusterer FinalClusterer
}

// Option customizes Cluster and Explore.
type Option func(*options)

func buildOptions(opts []Option) options {
	o := options{seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithSeed fixes the random seed; runs are fully deterministic given a seed.
// The default seed is 1.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithLearningRate sets MGCPL's learning rate η (paper default 0.03).
func WithLearningRate(eta float64) Option {
	return func(o *options) { o.learningRate = eta }
}

// WithInitialK sets MGCPL's starting number of clusters k₀ (paper default
// ⌈√n⌉). It must exceed the expected natural number of clusters.
func WithInitialK(k0 int) Option {
	return func(o *options) { o.initialK = k0 }
}

// WithEnsemble sets how many independent MGCPL analyses are pooled into the
// Γ encoding before aggregation (default 3). 1 reproduces the bare
// Algorithm 1 + Algorithm 2 pipeline; a small ensemble realizes the paper's
// observation that the multi-granular information of separate analyses
// complements each other, and is what gives MCDC its reported run-to-run
// stability.
func WithEnsemble(repeats int) Option {
	return func(o *options) { o.ensemble = repeats }
}

// WithParallelism bounds how many goroutines the pipeline's CPU-bound
// fan-outs may use: the ensemble MGCPL repeats, the per-cluster
// feature-weight refreshes, CAME's assignment/mode/θ sweeps, and the
// farthest-first seeding scans. n ≤ 0 (the default) resolves to
// runtime.GOMAXPROCS(0); n = 1 runs fully sequentially.
//
// Determinism contract: parallelism never changes results. For a fixed seed,
// every parallelism level produces bit-for-bit identical labels, κ series,
// and Θ weights — work is partitioned into chunks whose boundaries depend
// only on the problem size, per-chunk partial results are merged in chunk
// order, and all randomness is drawn on a single goroutine (ensemble repeats
// get their sub-seeds derived up front, in repeat order, from the master
// seed). WithParallelism(1) is therefore a debugging aid and a benchmark
// baseline, not a way to get different output.
func WithParallelism(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithFinalClusterer substitutes the given algorithm for CAME on the
// multi-granular encoding (the paper's "MCDC enhances existing methods"
// usage).
func WithFinalClusterer(fc FinalClusterer) Option {
	return func(o *options) { o.finalClusterer = fc }
}

// newRand builds a seeded random source (helper shared across the package).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
