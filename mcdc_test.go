package mcdc_test

import (
	"testing"

	"mcdc"
)

// TestClusterWellSeparated checks the headline behaviour: on a well-separated
// synthetic data set MCDC recovers the planted clusters nearly perfectly and
// MGCPL's final granularity lands at (or very near) the true k.
func TestClusterWellSeparated(t *testing.T) {
	ds := mcdc.SyntheticDataset("syn", 600, 10, 3, 7)
	res, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(42))
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(res.Labels) != ds.N() {
		t.Fatalf("got %d labels, want %d", len(res.Labels), ds.N())
	}
	acc, err := mcdc.Accuracy(ds.Labels, res.Labels)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc < 0.9 {
		t.Errorf("ACC = %.3f on well-separated data, want ≥ 0.9", acc)
	}
	kappa := res.MultiGranular.Kappa
	t.Logf("kappa = %v, ACC = %.3f", kappa, acc)
	for j := 1; j < len(kappa); j++ {
		if kappa[j] >= kappa[j-1] {
			t.Errorf("kappa not strictly decreasing: %v", kappa)
		}
	}
	if final := res.MultiGranular.EstimatedK(); final > 6 {
		t.Errorf("final granularity k_σ = %d, want near true k = 3", final)
	}
}

// TestDeterminism checks that a fixed seed reproduces the exact partition.
func TestDeterminism(t *testing.T) {
	ds := mcdc.SyntheticDataset("syn", 300, 8, 3, 11)
	a, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(5))
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(5))
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels diverge at %d: %d vs %d", i, a.Labels[i], b.Labels[i])
		}
	}
}

func TestExploreEstimatesK(t *testing.T) {
	ds := mcdc.SyntheticDataset("syn", 900, 12, 4, 3)
	mg, err := mcdc.Explore(ds, mcdc.WithSeed(9))
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if got := mg.EstimatedK(); got < 2 || got > 8 {
		t.Errorf("estimated k = %d, want near 4 (kappa %v)", got, mg.Kappa)
	}
	enc := mg.Encoding()
	if len(enc) != ds.N() || len(enc[0]) != len(mg.Kappa) {
		t.Errorf("encoding shape %dx%d, want %dx%d", len(enc), len(enc[0]), ds.N(), len(mg.Kappa))
	}
}
