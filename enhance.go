package mcdc

import (
	"math/rand"

	"mcdc/internal/fkmawcw"
	"mcdc/internal/gudmm"
)

// EnhanceGUDMM is the MCDC+G. variant of the paper: it applies the GUDMM
// mutual-information multi-aspect clusterer to the multi-granular encoding.
// Use it as Cluster(d, k, WithFinalClusterer(mcdc.EnhanceGUDMM)).
func EnhanceGUDMM(encoding [][]int, cardinalities []int, k int, rng *rand.Rand) ([]int, error) {
	res, err := gudmm.Run(encoding, cardinalities, gudmm.Config{K: k, Rand: rng})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// EnhanceFKMAWCW is the MCDC+F. variant of the paper: it applies the
// FKMAWCW fuzzy k-modes clusterer (with automated attribute- and
// cluster-weight learning) to the multi-granular encoding. The paper finds
// this the strongest variant overall.
func EnhanceFKMAWCW(encoding [][]int, cardinalities []int, k int, rng *rand.Rand) ([]int, error) {
	res, err := fkmawcw.Run(encoding, cardinalities, fkmawcw.Config{K: k, Rand: rng})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}
