package mcdc_test

// The WithParallelism determinism contract (see options.go): for a fixed
// seed, every parallelism level must produce bit-for-bit identical output.
// These tests pin that contract on real benchmark data sets — they are the
// equivalence gate the CI workflow runs under the race detector.

import (
	"testing"

	"mcdc"
)

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterParallelismEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"Vot.", 2},
		{"Bal.", 3},
	} {
		ds, err := mcdc.Builtin(tc.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := mcdc.Cluster(ds, tc.k, mcdc.WithSeed(7), mcdc.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8, 0} {
			par, err := mcdc.Cluster(ds, tc.k, mcdc.WithSeed(7), mcdc.WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !equalIntSlices(seq.Labels, par.Labels) {
				t.Errorf("%s: labels differ between parallelism 1 and %d", tc.name, workers)
			}
			if !equalIntSlices(seq.MultiGranular.Kappa, par.MultiGranular.Kappa) {
				t.Errorf("%s: kappa differs between parallelism 1 and %d: %v vs %v",
					tc.name, workers, seq.MultiGranular.Kappa, par.MultiGranular.Kappa)
			}
			if len(seq.Theta) != len(par.Theta) {
				t.Fatalf("%s: theta length differs", tc.name)
			}
			for r := range seq.Theta {
				if seq.Theta[r] != par.Theta[r] {
					t.Errorf("%s: theta[%d] differs between parallelism 1 and %d: %v vs %v",
						tc.name, r, workers, seq.Theta[r], par.Theta[r])
				}
			}
		}
	}
}

func TestExploreParallelismEquivalence(t *testing.T) {
	ds, err := mcdc.Builtin("Car.", 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mcdc.Explore(ds, mcdc.WithSeed(11), mcdc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := mcdc.Explore(ds, mcdc.WithSeed(11), mcdc.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSlices(seq.Kappa, par.Kappa) {
		t.Fatalf("kappa differs: %v vs %v", seq.Kappa, par.Kappa)
	}
	for j := range seq.Levels {
		if !equalIntSlices(seq.Levels[j], par.Levels[j]) {
			t.Fatalf("level %d labels differ between parallelism 1 and 8", j)
		}
	}
}

// TestEnsembleParallelismEquivalence pins the ensemble fan-out specifically:
// the pooled encoding's sub-seed derivation must make repeats independent of
// scheduling.
func TestEnsembleParallelismEquivalence(t *testing.T) {
	ds := mcdc.SyntheticDataset("eq", 400, 8, 3, 5)
	seq, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(2), mcdc.WithEnsemble(4), mcdc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(2), mcdc.WithEnsemble(4), mcdc.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSlices(seq.Labels, par.Labels) {
		t.Fatal("ensemble labels differ between parallelism 1 and 8")
	}
}
