package mcdc_test

// The WithParallelism determinism contract (see options.go): for a fixed
// seed, every parallelism level must produce bit-for-bit identical output.
// These tests pin that contract on real benchmark data sets — they are the
// equivalence gate the CI workflow runs under the race detector.

import (
	"math/rand"
	"reflect"
	"testing"

	"mcdc"
	"mcdc/internal/encoding"
	"mcdc/internal/experiments"
	"mcdc/internal/linkage"
	"mcdc/internal/similarity"
)

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterParallelismEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"Vot.", 2},
		{"Bal.", 3},
	} {
		ds, err := mcdc.Builtin(tc.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := mcdc.Cluster(ds, tc.k, mcdc.WithSeed(7), mcdc.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8, 0} {
			par, err := mcdc.Cluster(ds, tc.k, mcdc.WithSeed(7), mcdc.WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !equalIntSlices(seq.Labels, par.Labels) {
				t.Errorf("%s: labels differ between parallelism 1 and %d", tc.name, workers)
			}
			if !equalIntSlices(seq.MultiGranular.Kappa, par.MultiGranular.Kappa) {
				t.Errorf("%s: kappa differs between parallelism 1 and %d: %v vs %v",
					tc.name, workers, seq.MultiGranular.Kappa, par.MultiGranular.Kappa)
			}
			if len(seq.Theta) != len(par.Theta) {
				t.Fatalf("%s: theta length differs", tc.name)
			}
			for r := range seq.Theta {
				if seq.Theta[r] != par.Theta[r] {
					t.Errorf("%s: theta[%d] differs between parallelism 1 and %d: %v vs %v",
						tc.name, r, workers, seq.Theta[r], par.Theta[r])
				}
			}
		}
	}
}

func TestExploreParallelismEquivalence(t *testing.T) {
	ds, err := mcdc.Builtin("Car.", 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mcdc.Explore(ds, mcdc.WithSeed(11), mcdc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := mcdc.Explore(ds, mcdc.WithSeed(11), mcdc.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSlices(seq.Kappa, par.Kappa) {
		t.Fatalf("kappa differs: %v vs %v", seq.Kappa, par.Kappa)
	}
	for j := range seq.Levels {
		if !equalIntSlices(seq.Levels[j], par.Levels[j]) {
			t.Fatalf("level %d labels differ between parallelism 1 and 8", j)
		}
	}
}

// TestKMeansParallelismEquivalence pins the parallelized Lloyd sweeps of the
// one-hot baseline: for a fixed seed, k-means labels must be bit-for-bit
// identical at parallelism 1, 2, and GOMAXPROCS (each point's nearest center
// is computed independently; reductions and rng draws stay sequential).
func TestKMeansParallelismEquivalence(t *testing.T) {
	ds := mcdc.SyntheticDataset("kmeq", 600, 12, 4, 3)
	points, err := encoding.OneHot(ds.Rows, ds.Cardinalities())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []int {
		labels, err := encoding.KMeans(points, encoding.KMeansConfig{
			K:       4,
			Rand:    rand.New(rand.NewSource(9)),
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return labels
	}
	seq := run(1)
	for _, workers := range []int{2, 0} {
		if par := run(workers); !equalIntSlices(seq, par) {
			t.Errorf("kmeans labels differ between parallelism 1 and %d", workers)
		}
	}
}

// TestLinkageParallelismEquivalence pins the parallelized nearest-pair scans
// of dendrogram merging on a real benchmark data set, and the condensed
// path's identity with the dense one.
func TestLinkageParallelismEquivalence(t *testing.T) {
	ds, err := mcdc.Builtin("Vot.", 1)
	if err != nil {
		t.Fatal(err)
	}
	cond := linkage.HammingCondensedWorkers(ds.Rows, 0)
	seq, err := linkage.BuildCondensedWorkers(cond, linkage.Average, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 0} {
		par, err := linkage.BuildCondensedWorkers(cond, linkage.Average, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Merges, par.Merges) {
			t.Fatalf("dendrogram differs between parallelism 1 and %d", workers)
		}
		if !equalIntSlices(seq.Cut(2), par.Cut(2)) {
			t.Fatalf("cut labels differ between parallelism 1 and %d", workers)
		}
	}
	dense, err := linkage.Build(linkage.HammingMatrix(ds.Rows), linkage.Average)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Merges, dense.Merges) {
		t.Fatal("condensed dendrogram differs from the dense path")
	}
}

// TestChainLinkageEquivalence pins the O(n²) nearest-neighbour-chain path —
// the production linkage engine — against the O(n³) scan oracle on a real
// benchmark data set (Vot.: 16 binary features, so its normalized Hamming
// distances are massively tied AND sit on an exact binary grid, where the
// scan/chain identity is exact for every method): canonically identical
// merges and heights, identical CutK partitions, at parallelism 1, 2 and
// GOMAXPROCS.
func TestChainLinkageEquivalence(t *testing.T) {
	ds, err := mcdc.Builtin("Vot.", 1)
	if err != nil {
		t.Fatal(err)
	}
	cond := linkage.HammingCondensedWorkers(ds.Rows, 0)
	for _, method := range []linkage.Method{linkage.Single, linkage.Complete, linkage.Average} {
		scan, err := linkage.BuildCondensedWorkers(cond, method, 1)
		if err != nil {
			t.Fatal(err)
		}
		oracle := scan.Canonical()
		for _, workers := range []int{1, 2, 0} {
			chain, err := linkage.BuildChainWorkers(cond, method, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(oracle.Merges, chain.Merges) {
				t.Fatalf("%v: chain dendrogram (workers=%d) differs from the scan oracle", method, workers)
			}
			for _, k := range []int{2, 3, 5} {
				if !equalIntSlices(oracle.Cut(k), chain.Cut(k)) {
					t.Fatalf("%v: Cut(%d) differs between chain (workers=%d) and scan", method, k, workers)
				}
			}
		}
	}
}

// TestPackedPairwiseEquivalence pins the bit-packed popcount pairwise kernel
// against the unpacked per-feature oracle on a real benchmark data set and on
// synthetic mixes whose one-hot widths straddle the 64-bit word boundaries
// (1, 63, 64, 65 total bits): every condensed cell must be bit-for-bit
// identical at parallelism 1, 2, and GOMAXPROCS. Run under -race in CI
// alongside the other equivalence gates.
func TestPackedPairwiseEquivalence(t *testing.T) {
	sets := map[string][][]int{}
	if ds, err := mcdc.Builtin("Vot.", 1); err == nil {
		sets["Vot."] = ds.Rows
	} else {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for name, card := range map[string][]int{
		"1bit":  {1},
		"63bit": {31, 32},
		"64bit": {31, 32, 1},
		"65bit": {31, 32, 2},
	} {
		rows := make([][]int, 80)
		for i := range rows {
			row := make([]int, len(card))
			for r, m := range card {
				if rng.Intn(10) == 0 {
					row[r] = -1 // categorical.Missing
				} else {
					row[r] = rng.Intn(m)
				}
			}
			rows[i] = row
		}
		sets[name] = rows
	}
	for name, rows := range sets {
		for _, workers := range []int{1, 2, 0} {
			packed := similarity.PairwiseCondensed(rows, workers)
			oracle := similarity.PairwiseCondensedUnpacked(rows, workers)
			for i := 0; i < len(rows); i++ {
				for j := i + 1; j < len(rows); j++ {
					if got, want := packed.At(i, j), oracle.At(i, j); got != want {
						t.Fatalf("%s workers=%d: packed (%d,%d) = %v, unpacked = %v",
							name, workers, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestExperimentsFanoutEquivalence pins the per-dataset fan-out of the
// experiments harness: the Table-III cells must be bit-for-bit identical at
// parallelism 1, 2, and GOMAXPROCS.
func TestExperimentsFanoutEquivalence(t *testing.T) {
	run := func(workers int) *experiments.Table3 {
		t3, err := experiments.RunTable3(experiments.Table3Config{
			Runs:     2,
			Seed:     3,
			Datasets: []string{"Vot.", "Bal."},
			Methods:  []string{"K-MODES", "WOCIL"},
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return t3
	}
	seq := run(1)
	for _, workers := range []int{2, 0} {
		par := run(workers)
		if !reflect.DeepEqual(seq.Cells, par.Cells) {
			t.Errorf("Table III cells differ between parallelism 1 and %d", workers)
		}
	}
}

// TestEnsembleParallelismEquivalence pins the ensemble fan-out specifically:
// the pooled encoding's sub-seed derivation must make repeats independent of
// scheduling.
func TestEnsembleParallelismEquivalence(t *testing.T) {
	ds := mcdc.SyntheticDataset("eq", 400, 8, 3, 5)
	seq, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(2), mcdc.WithEnsemble(4), mcdc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := mcdc.Cluster(ds, 3, mcdc.WithSeed(2), mcdc.WithEnsemble(4), mcdc.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSlices(seq.Labels, par.Labels) {
		t.Fatal("ensemble labels differ between parallelism 1 and 8")
	}
}
